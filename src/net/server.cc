#include "net/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/crc32.h"
#include "common/logging.h"
#include "core/query.h"
#include "net/net_util.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/request_stats.h"
#include "obs/trace.h"

namespace hyrise_nv::net {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Pending responses larger than this stop further reads on the
/// connection (backpressure): level-triggered epoll re-delivers EPOLLIN
/// once the client has drained its side.
constexpr size_t kMaxOutBacklog = 4u << 20;
/// Responses stop appending rows past this payload size; the response
/// carries a `truncated` flag instead of overflowing the frame cap.
constexpr size_t kMaxResultPayload = 6u << 20;

}  // namespace

/// A request whose response sits in the out buffer waiting to reach the
/// socket. Latency attribution completes only once the last byte of the
/// response has been accepted by the kernel — `flush_end` marks that
/// point on the connection's monotonic byte counter (the out buffer
/// itself is compacted, so offsets into it are not stable).
struct PendingRequest {
  uint64_t flush_end = 0;     // conn->bytes_queued after this response
  uint64_t start_ticks = 0;   // frame-read-complete
  uint64_t queued_ticks = 0;  // response appended to the out buffer
  uint32_t tag = 0;           // v2 request tag (0 on v1 connections)
  uint8_t op = 0;
  obs::StageBreakdown stages;  // parse..commit_publish filled at execute
  bool sampled = false;        // carries an engine trace to graft
  obs::SpanNode engine_trace;  // sampled txn_commit subtree, if any
};

/// One encoded response waiting to reach the socket: the frame header
/// (8 bytes on v1, 12 on v2) plus the payload it frames. Responses are
/// flushed as an iovec chain via writev — the payload is never copied
/// into a contiguous out buffer.
struct OutBuf {
  uint8_t header[kFrameHeaderBytesV2];
  uint32_t header_len = 0;
  std::vector<uint8_t> payload;
  size_t size() const { return header_len + payload.size(); }
};

/// One connection = one session. Owned by exactly one worker thread; no
/// field needs locking.
struct Connection {
  OwnedFd fd;
  uint64_t id = 0;
  std::vector<uint8_t> in;
  size_t in_pos = 0;  // parse cursor into `in`
  /// Encoded responses awaiting the socket, oldest first; chain_pos is
  /// how many bytes of the front response have already been sent.
  std::deque<OutBuf> out_chain;
  size_t chain_pos = 0;
  bool handshaken = false;
  /// Negotiated protocol version; flips to 2 after a v2 hello response
  /// is queued (the hello exchange itself is always v1-framed).
  uint16_t version = 1;
  /// Granted pipeline window (v2): requests outstanding beyond this are
  /// shed with the retryable kOverloaded code.
  uint32_t window = kDefaultPipelineWindow;
  bool close_after_flush = false;
  bool wants_writable = false;
  txn::Transaction txn;
  bool txn_open = false;
  uint64_t last_active_ms = 0;
  /// Monotonic response-byte counters; bytes_flushed trails bytes_queued
  /// by exactly the unsent backlog.
  uint64_t bytes_queued = 0;
  uint64_t bytes_flushed = 0;
  std::deque<PendingRequest> pending_requests;
  /// Encode scratch: response-payload vectors recycled after their frame
  /// is flushed, so the hot path reuses capacity instead of reallocating
  /// per response.
  std::vector<std::vector<uint8_t>> buf_pool;
  /// Scratch filled by ExecCommit for the request currently executing so
  /// ExecuteFrame can attribute the engine's commit stages; reset before
  /// every Execute().
  uint64_t last_wal_sync_ns = 0;
  uint64_t last_commit_publish_ns = 0;
  bool last_commit_sampled = false;

  size_t out_backlog() const {
    return static_cast<size_t>(bytes_queued - bytes_flushed);
  }
};

namespace {

/// Encode-scratch pool bounds: enough buffers for a full pipeline
/// window's worth of small responses, without pinning scan-sized
/// allocations to an idle connection.
constexpr size_t kMaxPooledBufs = 8;
constexpr size_t kMaxPooledBufBytes = 64u << 10;

void RecycleBuf(Connection* conn, std::vector<uint8_t>&& buf) {
  if (conn->buf_pool.size() >= kMaxPooledBufs ||
      buf.capacity() > kMaxPooledBufBytes) {
    return;
  }
  buf.clear();
  conn->buf_pool.push_back(std::move(buf));
}

std::vector<uint8_t> TakeBuf(Connection* conn) {
  if (conn->buf_pool.empty()) return {};
  std::vector<uint8_t> buf = std::move(conn->buf_pool.back());
  conn->buf_pool.pop_back();
  return buf;
}

}  // namespace

class ServerImpl {
 public:
  ServerImpl(core::Database* db, const ServerOptions& options)
      : db_(db),
        options_(options),
        latency_hist_(obs::MetricsRegistry::Instance().GetHistogram(
            "net.request.latency_ns")),
        requests_counter_(obs::MetricsRegistry::Instance().GetCounter(
            "net.requests.count")),
        overload_counter_(obs::MetricsRegistry::Instance().GetCounter(
            "net.overload.rejections")),
        warming_counter_(obs::MetricsRegistry::Instance().GetCounter(
            "net.warming.rejections")),
        protocol_error_counter_(obs::MetricsRegistry::Instance().GetCounter(
            "net.protocol.errors")),
        accepted_counter_(obs::MetricsRegistry::Instance().GetCounter(
            "net.connections.accepted")),
        conns_gauge_(obs::MetricsRegistry::Instance().GetGauge(
            "net.connections.open")),
        inflight_gauge_(
            obs::MetricsRegistry::Instance().GetGauge("net.inflight")),
        queue_gauge_(
            obs::MetricsRegistry::Instance().GetGauge("net.queue.depth")),
        slow_request_counter_(obs::MetricsRegistry::Instance().GetCounter(
            "net.slow_requests.count")) {
    for (uint8_t op = static_cast<uint8_t>(Opcode::kHello);
         op <= static_cast<uint8_t>(kLastOpcode); ++op) {
      op_counters_[op] = &obs::MetricsRegistry::Instance().GetCounter(
          std::string("net.op.") +
          OpcodeName(static_cast<Opcode>(op)) + ".count");
      // Pre-register the full per-opcode per-stage matrix so the export
      // surface is name-stable from the first stats call (dashboards and
      // the CI smoke key on these names existing, not on traffic).
      for (size_t stage = 0; stage < obs::kNumRequestStages; ++stage) {
        stage_hists_[op][stage] =
            &obs::MetricsRegistry::Instance().GetHistogram(
                std::string("net.op.") + OpcodeName(static_cast<Opcode>(op)) +
                ".stage." + obs::RequestStageName(stage) + ".latency_ns");
      }
    }
  }

  ~ServerImpl() {
    Drain();
    Wait();
  }

  Status Start() {
    auto listener_result = CreateListener(options_.host, options_.port);
    if (!listener_result.ok()) return listener_result.status();
    listen_fd_ = std::move(listener_result).ValueUnsafe();
    auto port_result = LocalPort(listen_fd_.get());
    if (!port_result.ok()) return port_result.status();
    port_ = *port_result;

    const int worker_count = std::max(1, options_.num_workers);
    workers_.reserve(static_cast<size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->epoll_fd = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
      worker->wake_fd =
          OwnedFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
      if (!worker->epoll_fd.valid() || !worker->wake_fd.valid()) {
        return Status::IOError("epoll/eventfd: " +
                               std::string(std::strerror(errno)));
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = worker->wake_fd.get();
      if (::epoll_ctl(worker->epoll_fd.get(), EPOLL_CTL_ADD,
                      worker->wake_fd.get(), &ev) < 0) {
        return Status::IOError("epoll_ctl(wake): " +
                               std::string(std::strerror(errno)));
      }
      workers_.push_back(std::move(worker));
    }
    for (auto& worker : workers_) {
      worker->thread =
          std::thread([this, w = worker.get()] { WorkerLoop(w); });
    }
    acceptor_ = std::thread([this] { AcceptLoop(); });
    HYRISE_NV_LOG(kInfo) << "server listening on " << options_.host << ":"
                         << port_ << " with " << workers_.size()
                         << " workers";
    return Status::OK();
  }

  uint16_t port() const { return port_; }
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  void Drain() {
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return;
    }
    if (obs::BlackboxWriter* bb = db_->heap().blackbox()) {
      bb->Record(obs::BlackboxEventType::kDrain,
                 static_cast<uint64_t>(
                     conns_gauge_.Value() < 0 ? 0 : conns_gauge_.Value()));
    }
    WakeAll();
  }

  void Wait() {
    std::lock_guard<std::mutex> guard(join_mutex_);
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }

  ServerCounters counters() const {
    ServerCounters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.overload_rejected =
        overload_rejected_.load(std::memory_order_relaxed);
    c.warming_rejected =
        warming_rejected_.load(std::memory_order_relaxed);
    c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    c.requests = requests_.load(std::memory_order_relaxed);
    c.open_connections = open_conns_.load(std::memory_order_relaxed);
    c.open_transactions = open_txns_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  struct Worker {
    OwnedFd epoll_fd;
    OwnedFd wake_fd;
    std::thread thread;
    std::mutex pending_mutex;
    std::deque<std::unique_ptr<Connection>> pending;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
  };

  void WakeAll() {
    for (auto& worker : workers_) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(worker->wake_fd.get(), &one, sizeof(one));
    }
  }

  // --- Acceptor -----------------------------------------------------------

  void AcceptLoop() {
    size_t next_worker = 0;
    while (!draining()) {
      pollfd pfd{listen_fd_.get(), POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 200);
      if (rc <= 0) continue;
      while (true) {
        const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        OwnedFd conn_fd(fd);
        (void)ConfigureAcceptedSocket(fd);
        if (open_conns_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
          // Connection-level admission control: a one-frame 503 and an
          // immediate close, so the client backs off instead of hanging.
          overload_rejected_.fetch_add(1, std::memory_order_relaxed);
          overload_counter_.Inc();
          const auto payload = MakeErrorPayload(
              Opcode::kHello, WireCode::kOverloaded,
              "connection limit reached");
          (void)WriteFrame(fd, payload);
          continue;
        }
        auto conn = std::make_unique<Connection>();
        conn->fd = std::move(conn_fd);
        conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
        conn->last_active_ms = NowMs();
        accepted_.fetch_add(1, std::memory_order_relaxed);
        accepted_counter_.Inc();
        open_conns_.fetch_add(1, std::memory_order_relaxed);
        conns_gauge_.Add(1);
        if (obs::BlackboxWriter* bb = db_->heap().blackbox()) {
          bb->Record(obs::BlackboxEventType::kConnOpen, conn->id,
                     static_cast<uint64_t>(
                         open_conns_.load(std::memory_order_relaxed)));
        }
        Worker* worker = workers_[next_worker].get();
        next_worker = (next_worker + 1) % workers_.size();
        {
          std::lock_guard<std::mutex> guard(worker->pending_mutex);
          worker->pending.push_back(std::move(conn));
        }
        const uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(worker->wake_fd.get(), &one, sizeof(one));
      }
    }
    listen_fd_.Reset();
  }

  // --- Worker event loop --------------------------------------------------

  void WorkerLoop(Worker* worker) {
    std::vector<epoll_event> events(64);
    uint64_t last_sweep_ms = NowMs();
    while (true) {
      if (draining()) {
        CloseAllConnections(worker);
        return;
      }
      const int n = ::epoll_wait(worker->epoll_fd.get(), events.data(),
                                 static_cast<int>(events.size()), 200);
      if (n < 0 && errno != EINTR) {
        HYRISE_NV_LOG(kError)
            << "epoll_wait: " << std::strerror(errno);
        return;
      }
      AdoptPending(worker);
      for (int i = 0; i < std::max(n, 0); ++i) {
        const epoll_event& ev = events[static_cast<size_t>(i)];
        if (ev.data.fd == worker->wake_fd.get()) {
          uint64_t drain_count;
          while (::read(worker->wake_fd.get(), &drain_count,
                        sizeof(drain_count)) > 0) {
          }
          continue;
        }
        auto it = worker->conns.find(ev.data.fd);
        if (it == worker->conns.end()) continue;
        Connection* conn = it->second.get();
        // Read before honouring HUP: a peer that wrote and immediately
        // closed still has bytes pending, and they must be parsed (and
        // protocol errors counted) before the close is observed via
        // recv() == 0.
        if ((ev.events & EPOLLIN) != 0) {
          OnReadable(worker, conn);
          if (worker->conns.find(ev.data.fd) == worker->conns.end()) {
            continue;  // OnReadable closed the connection
          }
        }
        if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConnection(worker, conn);
          continue;
        }
        if ((ev.events & EPOLLOUT) != 0) {
          FlushOut(worker, conn);
        }
      }
      const uint64_t now = NowMs();
      if (options_.idle_timeout_ms > 0 &&
          now - last_sweep_ms >=
              static_cast<uint64_t>(options_.idle_timeout_ms) / 2 + 1) {
        last_sweep_ms = now;
        SweepIdle(worker, now);
      }
    }
  }

  void AdoptPending(Worker* worker) {
    std::deque<std::unique_ptr<Connection>> pending;
    {
      std::lock_guard<std::mutex> guard(worker->pending_mutex);
      pending.swap(worker->pending);
    }
    for (auto& conn : pending) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd.get();
      if (::epoll_ctl(worker->epoll_fd.get(), EPOLL_CTL_ADD,
                      conn->fd.get(), &ev) < 0) {
        DropConnectionState(conn.get());
        continue;
      }
      worker->conns[conn->fd.get()] = std::move(conn);
    }
  }

  void SweepIdle(Worker* worker, uint64_t now) {
    std::vector<Connection*> idle;
    for (auto& [fd, conn] : worker->conns) {
      if (now - conn->last_active_ms >
          static_cast<uint64_t>(options_.idle_timeout_ms)) {
        idle.push_back(conn.get());
      }
    }
    for (Connection* conn : idle) {
      HYRISE_NV_LOG(kInfo) << "closing idle session " << conn->id;
      CloseConnection(worker, conn);
    }
  }

  void CloseAllConnections(Worker* worker) {
    for (auto& [fd, conn] : worker->conns) {
      // Best-effort flush of already-queued responses (the drain ack in
      // particular), then release the session's transaction.
      (void)TrySend(conn.get());
      DropConnectionState(conn.get());
    }
    worker->conns.clear();
    AdoptPending(worker);  // connections accepted but never registered
    for (auto& [fd, conn] : worker->conns) {
      DropConnectionState(conn.get());
    }
    worker->conns.clear();
  }

  /// Releases engine-side session state (the open transaction) and the
  /// bookkeeping for a connection that is going away.
  void DropConnectionState(Connection* conn) {
    if (conn->txn_open) {
      // A dead client must not leak claimed rows: abort stamps the
      // claims away, so its versions stay invisible to every reader.
      Status status = db_->Abort(conn->txn);
      if (!status.ok()) {
        HYRISE_NV_LOG(kWarn) << "abort of session " << conn->id
                             << " transaction failed: "
                             << status.ToString();
      }
      conn->txn_open = false;
      open_txns_.fetch_add(-1, std::memory_order_relaxed);
    }
    if (obs::BlackboxWriter* bb = db_->heap().blackbox()) {
      bb->Record(obs::BlackboxEventType::kConnClose, conn->id,
                 conn->txn_open ? 1 : 0);
    }
    open_conns_.fetch_add(-1, std::memory_order_relaxed);
    conns_gauge_.Add(-1);
  }

  void CloseConnection(Worker* worker, Connection* conn) {
    const int fd = conn->fd.get();
    ::epoll_ctl(worker->epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr);
    DropConnectionState(conn);
    worker->conns.erase(fd);
  }

  // --- I/O ----------------------------------------------------------------

  /// Non-blocking send of the out chain. Returns false when the
  /// connection was closed (error or close_after_flush completion).
  bool FlushOut(Worker* worker, Connection* conn) {
    if (!TrySend(conn)) {
      CloseConnection(worker, conn);
      return false;
    }
    const bool drained = conn->out_chain.empty();
    if (drained && conn->close_after_flush) {
      CloseConnection(worker, conn);
      return false;
    }
    const bool want_writable = !drained;
    if (want_writable != conn->wants_writable) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_writable ? EPOLLOUT : 0u);
      ev.data.fd = conn->fd.get();
      ::epoll_ctl(worker->epoll_fd.get(), EPOLL_CTL_MOD, conn->fd.get(),
                  &ev);
      conn->wants_writable = want_writable;
    }
    return true;
  }

  /// Raw send loop; returns false on a hard socket error. The whole
  /// response chain goes out as one scatter-gather writev (header +
  /// payload iovecs, no coalescing copy); every byte accepted by the
  /// kernel advances bytes_flushed, which is what completes pending
  /// requests' latency attribution. Fully flushed payload buffers are
  /// recycled into the connection's encode-scratch pool.
  bool TrySend(Connection* conn) {
    constexpr int kMaxIov = 64;
    bool ok = true;
    while (!conn->out_chain.empty()) {
      iovec iov[kMaxIov];
      int iovcnt = 0;
      size_t skip = conn->chain_pos;  // applies to the front buffer only
      for (const OutBuf& buf : conn->out_chain) {
        if (iovcnt > kMaxIov - 2) break;
        if (skip < buf.header_len) {
          iov[iovcnt].iov_base =
              const_cast<uint8_t*>(buf.header) + skip;
          iov[iovcnt].iov_len = buf.header_len - skip;
          ++iovcnt;
          skip = 0;
        } else {
          skip -= buf.header_len;
        }
        if (!buf.payload.empty() && skip < buf.payload.size()) {
          iov[iovcnt].iov_base =
              const_cast<uint8_t*>(buf.payload.data()) + skip;
          iov[iovcnt].iov_len = buf.payload.size() - skip;
          ++iovcnt;
        }
        skip = 0;
      }
      // sendmsg == writev + flags; MSG_NOSIGNAL keeps a dead peer from
      // raising SIGPIPE out of the worker thread.
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(iovcnt);
      const ssize_t n = ::sendmsg(conn->fd.get(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        ok = false;
        break;
      }
      conn->bytes_flushed += static_cast<uint64_t>(n);
      size_t advanced = static_cast<size_t>(n);
      while (advanced > 0 && !conn->out_chain.empty()) {
        OutBuf& front = conn->out_chain.front();
        const size_t left = front.size() - conn->chain_pos;
        if (advanced >= left) {
          advanced -= left;
          conn->chain_pos = 0;
          RecycleBuf(conn, std::move(front.payload));
          conn->out_chain.pop_front();
        } else {
          conn->chain_pos += advanced;
          advanced = 0;
        }
      }
    }
    CompleteFlushedRequests(conn);
    return ok;
  }

  /// Finishes latency accounting for every pending request whose
  /// response has fully reached the socket: records the write_flush
  /// stage and the end-to-end `net.request.latency_ns` (which therefore
  /// covers output-backlog drain time, not just execution), applies the
  /// slow-request threshold, and publishes the wire→txn→WAL trace for
  /// sampled requests.
  void CompleteFlushedRequests(Connection* conn) {
    using obs::FastClock;
    using obs::RequestStage;
    while (!conn->pending_requests.empty() &&
           conn->pending_requests.front().flush_end <= conn->bytes_flushed) {
      PendingRequest req = std::move(conn->pending_requests.front());
      conn->pending_requests.pop_front();
      const uint64_t now_ticks = FastClock::NowTicks();
      const uint64_t total_ns = FastClock::TicksToNanos(
          static_cast<int64_t>(now_ticks - req.start_ticks));
      req.stages[RequestStage::kWriteFlush] = FastClock::TicksToNanos(
          static_cast<int64_t>(now_ticks - req.queued_ticks));
      latency_hist_.Record(total_ns);
      RecordStage(req.op, RequestStage::kWriteFlush,
                  req.stages[RequestStage::kWriteFlush]);
      const uint64_t threshold_ns = options_.slow_request_us * 1000;
      if (threshold_ns != 0 && total_ns >= threshold_ns) {
        CaptureSlowRequest(conn, req, total_ns);
      }
      if (req.sampled) PublishRequestTrace(req, total_ns);
    }
  }

  void RecordStage(uint8_t op, obs::RequestStage stage, uint64_t ns) {
    obs::Histogram* hist = stage_hists_[op][static_cast<size_t>(stage)];
    if (hist != nullptr) hist->Record(ns);
  }

  void CaptureSlowRequest(Connection* conn, const PendingRequest& req,
                          uint64_t total_ns) {
    const obs::RequestStage dominant = req.stages.Dominant();
    slow_request_counter_.Inc();
    slow_ring_.Push(req.op, total_ns, req.stages);
    if (obs::BlackboxWriter* bb = db_->heap().blackbox()) {
      bb->Record(obs::BlackboxEventType::kSlowRequest, req.op,
                 static_cast<uint64_t>(dominant), total_ns,
                 req.stages[dominant], conn->id);
    }
  }

  /// Builds the one-tree view the tracing satellite promises: the wire
  /// stages with the engine's sampled txn_commit subtree (which itself
  /// carries persist/wal_sync/commit_publish) grafted under execute.
  void PublishRequestTrace(const PendingRequest& req, uint64_t total_ns) {
    using obs::RequestStage;
    obs::SpanNode root;
    root.name = "request";
    root.seconds = static_cast<double>(total_ns) / 1e9;
    const RequestStage wire_stages[] = {RequestStage::kParse,
                                        RequestStage::kDispatch,
                                        RequestStage::kExecute,
                                        RequestStage::kWriteFlush};
    for (const RequestStage stage : wire_stages) {
      obs::SpanNode child;
      child.name = obs::RequestStageName(stage);
      child.seconds = static_cast<double>(req.stages[stage]) / 1e9;
      if (stage == RequestStage::kExecute && !req.engine_trace.name.empty()) {
        child.children.push_back(req.engine_trace);
      }
      root.children.push_back(std::move(child));
    }
    std::lock_guard<std::mutex> guard(request_trace_mutex_);
    last_request_trace_ = std::move(root);
  }

  void OnReadable(Worker* worker, Connection* conn) {
    if (conn->out_backlog() > kMaxOutBacklog) {
      // Backpressure: the client is not draining responses; stop
      // reading until it does (level-triggered epoll re-arms this).
      return;
    }
    uint8_t buf[16384];
    bool peer_closed = false;
    while (true) {
      const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.insert(conn->in.end(), buf, buf + n);
        conn->last_active_ms = NowMs();
        if (conn->in.size() - conn->in_pos > kMaxOutBacklog) break;
        continue;
      }
      if (n == 0) {
        // Peer closed — but bytes that arrived before the FIN still get
        // parsed (so a write-then-hang-up peer's protocol errors are
        // observed and counted), then the connection goes away.
        peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(worker, conn);
      return;
    }
    if (!ParseAndExecute(worker, conn)) return;  // connection closed
    // Compact the parse buffer once a batch is done.
    if (conn->in_pos > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<std::ptrdiff_t>(conn->in_pos));
      conn->in_pos = 0;
    }
    if (peer_closed) {
      (void)TrySend(conn);  // best-effort flush of queued responses
      CloseConnection(worker, conn);
      return;
    }
    FlushOut(worker, conn);
  }

  /// One complete frame discovered by the batch scan, pending execution.
  struct FrameRef {
    size_t header_off = 0;  // offset of the frame header in conn->in
    uint32_t len = 0;
    uint32_t tag = 0;
    uint64_t ticks = 0;  // frame-read-complete timestamp
    bool hoist = false;  // v2 ad-hoc read: may complete ahead of DML
  };

  /// True for requests the v2 ordering rules allow to complete out of
  /// order: pings and ad-hoc (tid 0) reads, which carry their own
  /// snapshot and touch no session state. DML, transaction control and
  /// in-transaction reads stay FIFO (DESIGN.md §17).
  static bool IsHoistableRead(const uint8_t* payload, uint32_t len) {
    if (len < 1) return false;
    const Opcode op = static_cast<Opcode>(payload[0]);
    if (op == Opcode::kPing) return true;
    if (op != Opcode::kScanEqual && op != Opcode::kScanRange &&
        op != Opcode::kCount) {
      return false;
    }
    if (len < 1 + sizeof(uint64_t)) return false;
    uint64_t tid;
    std::memcpy(&tid, payload + 1, sizeof(tid));
    return tid == 0;
  }

  /// Drains conn->in into per-connection request batches and executes
  /// them. Each batch is scanned for complete frames first (so the
  /// queue-depth gauge sees the real backlog and v2 read hoisting knows
  /// the whole wake's worth of work), then executed: on v2 connections
  /// ad-hoc reads run first and complete out of order ahead of any DML
  /// queued behind them; everything else runs in arrival order. Returns
  /// false when the connection was closed (protocol error).
  bool ParseAndExecute(Worker* worker, Connection* conn) {
    while (true) {
      const uint32_t header_bytes = conn->version >= 2
                                        ? kFrameHeaderBytesV2
                                        : kFrameHeaderBytes;
      std::vector<FrameRef> batch;
      Status fatal;  // malformed header: poisons the stream
      size_t pos = conn->in_pos;
      while (conn->in.size() - pos >= header_bytes) {
        const uint8_t* header = conn->in.data() + pos;
        auto len_result =
            DecodeFrameHeader(header, options_.max_frame_bytes);
        if (!len_result.ok()) {
          fatal = len_result.status();
          break;
        }
        const uint32_t len = *len_result;
        if (conn->in.size() - pos < header_bytes + len) break;
        FrameRef ref;
        ref.header_off = pos;
        ref.len = len;
        // Frame-read-complete: request latency is measured from here,
        // so the CRC check and opcode decode land in the parse stage.
        ref.ticks = obs::FastClock::NowTicks();
        if (conn->version >= 2) {
          ref.tag = TaggedFrameTag(header);
          ref.hoist = IsHoistableRead(header + header_bytes, len);
        }
        batch.push_back(ref);
        pos += header_bytes + len;
        // Before the handshake the framing of everything past the first
        // frame is unknown (hello may negotiate v2): execute one frame,
        // then rescan under the negotiated version.
        if (!conn->handshaken) break;
      }
      if (batch.empty() && fatal.ok()) return true;  // need more bytes
      conn->in_pos = pos;  // every scanned frame is consumed below
      size_t queued = batch.size();
      queue_gauge_.Add(static_cast<int64_t>(queued));
      // Two passes on v2 (hoisted reads, then the FIFO remainder); the
      // single pass over a v1 batch is the degenerate second pass.
      for (const int pass : {0, 1}) {
        for (const FrameRef& ref : batch) {
          if (ref.hoist != (pass == 0)) continue;
          const uint8_t* payload =
              conn->in.data() + ref.header_off + header_bytes;
          Status crc_status =
              conn->version >= 2
                  ? CheckTaggedFrameCrc(conn->in.data() + ref.header_off,
                                        payload, ref.len)
                  : CheckFrameCrc(conn->in.data() + ref.header_off,
                                  payload, ref.len);
          if (!crc_status.ok()) {
            queue_gauge_.Add(-static_cast<int64_t>(queued));
            ProtocolError(worker, conn, static_cast<Opcode>(0),
                          crc_status.message(), ref.tag);
            return false;
          }
          --queued;
          queue_gauge_.Add(-1);
          if (!ExecuteFrame(worker, conn, payload, ref.len, ref.ticks,
                            ref.tag)) {
            queue_gauge_.Add(-static_cast<int64_t>(queued));
            return false;
          }
        }
      }
      if (!fatal.ok()) {
        ProtocolError(worker, conn, static_cast<Opcode>(0),
                      fatal.message(), 0);
        return false;
      }
    }
  }

  /// A malformed frame: count it, send a ProtocolError frame, close the
  /// connection after the flush (a byte stream past a bad frame cannot
  /// be resynchronised).
  void ProtocolError(Worker* worker, Connection* conn, Opcode op,
                     const std::string& message, uint32_t tag = 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    protocol_error_counter_.Inc();
    AppendResponse(conn,
                   MakeErrorPayload(op, WireCode::kProtocolError, message),
                   tag);
    conn->close_after_flush = true;
    FlushOut(worker, conn);
  }

  /// Frames `payload` (v1 or tagged v2, per the connection's negotiated
  /// version) straight into the out chain — the payload moves, it is
  /// never copied into a contiguous buffer.
  void AppendResponse(Connection* conn, std::vector<uint8_t>&& payload,
                      uint32_t tag = 0) {
    OutBuf buf;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::memcpy(buf.header, &len, sizeof(len));
    uint32_t crc;
    if (conn->version >= 2) {
      crc = MaskCrc(
          Crc32c(payload.data(), payload.size(), Crc32c(&tag, sizeof(tag))));
      std::memcpy(buf.header + 8, &tag, sizeof(tag));
      buf.header_len = kFrameHeaderBytesV2;
    } else {
      crc = MaskCrc(Crc32c(payload.data(), payload.size()));
      buf.header_len = kFrameHeaderBytes;
    }
    std::memcpy(buf.header + 4, &crc, sizeof(crc));
    buf.payload = std::move(payload);
    conn->bytes_queued += buf.size();
    conn->out_chain.push_back(std::move(buf));
  }

  // --- Request execution --------------------------------------------------

  /// True when `tag` is already attached to an outstanding request on
  /// this connection (response not yet fully flushed). Bounded by the
  /// pipeline window, so the linear scan is cheap.
  static bool TagInFlight(Connection* conn, uint32_t tag) {
    for (const PendingRequest& pr : conn->pending_requests) {
      if (pr.tag == tag) return true;
    }
    return false;
  }

  /// Returns false when the connection was closed.
  bool ExecuteFrame(Worker* worker, Connection* conn,
                    const uint8_t* payload, uint32_t len,
                    uint64_t start_ticks, uint32_t tag = 0) {
    using obs::FastClock;
    using obs::RequestStage;
    WireReader reader(payload, len);
    const uint8_t raw_op = reader.U8();
    if (!IsKnownOpcode(raw_op)) {
      // The frame boundary is intact, so the stream is still in sync:
      // answer cleanly and keep the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_error_counter_.Inc();
      AppendResponse(conn,
                     MakeErrorPayload(
                         static_cast<Opcode>(raw_op),
                         WireCode::kNotSupported,
                         "unknown opcode " + std::to_string(raw_op)),
                     tag);
      return true;
    }
    const Opcode op = static_cast<Opcode>(raw_op);
    op_counters_[raw_op]->Inc();
    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_counter_.Inc();

    if (!conn->handshaken && op != Opcode::kHello) {
      ProtocolError(worker, conn, op, "first frame must be hello", tag);
      return false;
    }

    // Stage attribution: parse (CRC + opcode decode + handshake check),
    // dispatch (admission control), execute (engine work, minus the
    // commit stages harvested from the transaction), wal_sync and
    // commit_publish (engine commit pipeline). write_flush completes in
    // CompleteFlushedRequests once the response reaches the socket.
    PendingRequest req;
    req.start_ticks = start_ticks;
    req.op = raw_op;
    req.tag = tag;
    const uint64_t parse_end_ticks = FastClock::NowTicks();
    req.stages[RequestStage::kParse] = FastClock::TicksToNanos(
        static_cast<int64_t>(parse_end_ticks - start_ticks));

    if (op == Opcode::kHello) {
      const bool keep = HandleHello(worker, conn, reader);
      if (keep) {
        // HandleHello already queued the response; the hello has no
        // dispatch/engine stages, so everything after parse is execute.
        const uint64_t exec_end_ticks = FastClock::NowTicks();
        req.stages[RequestStage::kExecute] = FastClock::TicksToNanos(
            static_cast<int64_t>(exec_end_ticks - parse_end_ticks));
        FinishRequestStages(conn, std::move(req), exec_end_ticks);
      }
      return keep;
    }

    std::vector<uint8_t> response;
    uint64_t dispatch_end_ticks = parse_end_ticks;
    if (conn->version >= 2 &&
        conn->pending_requests.size() >= conn->window) {
      // Pipeline window overflow: the client has more requests
      // outstanding than it negotiated. Shed the excess with the
      // retryable admission-control code — never a connection close.
      overload_rejected_.fetch_add(1, std::memory_order_relaxed);
      overload_counter_.Inc();
      response = MakeErrorPayload(
          op, WireCode::kOverloaded,
          "pipeline window exceeded (" + std::to_string(conn->window) +
              " requests outstanding)");
      dispatch_end_ticks = FastClock::NowTicks();
    } else if (conn->version >= 2 && TagInFlight(conn, tag)) {
      // Tags must be unique among outstanding requests — a duplicate
      // would make two responses indistinguishable to the client. The
      // frame boundary is intact, so answer cleanly and keep going.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_error_counter_.Inc();
      response = MakeErrorPayload(
          op, WireCode::kInvalidArgument,
          "request tag " + std::to_string(tag) + " already in flight");
      dispatch_end_ticks = FastClock::NowTicks();
    } else if (draining()) {
      response = MakeErrorPayload(op, WireCode::kDraining,
                                  "server is draining");
      dispatch_end_ticks = FastClock::NowTicks();
    } else {
      // Request-level admission control: a bounded number of requests
      // may execute concurrently; the rest get a 503-style rejection
      // the client treats as retryable.
      const int inflight =
          inflight_.fetch_add(1, std::memory_order_acq_rel);
      if (inflight >= options_.max_inflight) {
        overload_rejected_.fetch_add(1, std::memory_order_relaxed);
        overload_counter_.Inc();
        response = MakeErrorPayload(
            op, WireCode::kOverloaded,
            "server at capacity (" +
                std::to_string(options_.max_inflight) +
                " requests in flight)");
        dispatch_end_ticks = FastClock::NowTicks();
      } else if (ShedWhileWarming(op, inflight, &response)) {
        // Degraded serving: a tighter cap applied to engine-touching
        // ops; `response` already carries the kWarming rejection with
        // the drain progress.
        dispatch_end_ticks = FastClock::NowTicks();
      } else {
        inflight_gauge_.Set(inflight + 1);
        dispatch_end_ticks = FastClock::NowTicks();
        conn->last_wal_sync_ns = 0;
        conn->last_commit_publish_ns = 0;
        conn->last_commit_sampled = false;
        response = Execute(op, conn, reader);
        req.stages[RequestStage::kWalSync] = conn->last_wal_sync_ns;
        req.stages[RequestStage::kCommitPublish] =
            conn->last_commit_publish_ns;
        if (conn->last_commit_sampled) {
          req.sampled = true;
          req.engine_trace = db_->LastSampledTxnTrace();
        }
      }
      inflight_.fetch_add(-1, std::memory_order_acq_rel);
      inflight_gauge_.Add(-1);
    }
    req.stages[RequestStage::kDispatch] = FastClock::TicksToNanos(
        static_cast<int64_t>(dispatch_end_ticks - parse_end_ticks));
    const uint64_t exec_end_ticks = FastClock::NowTicks();
    const uint64_t exec_ns = FastClock::TicksToNanos(
        static_cast<int64_t>(exec_end_ticks - dispatch_end_ticks));
    // The engine's wal_sync/commit_publish ran inside Execute(); carve
    // them out so the six stages stay disjoint and sum to ≈ total.
    const uint64_t engine_ns = req.stages[RequestStage::kWalSync] +
                               req.stages[RequestStage::kCommitPublish];
    req.stages[RequestStage::kExecute] =
        exec_ns > engine_ns ? exec_ns - engine_ns : 0;
    AppendResponse(conn, std::move(response), tag);
    FinishRequestStages(conn, std::move(req), FastClock::NowTicks());
    if (op == Opcode::kDrain) Drain();
    return true;
  }

  /// Records the stages known at execute time and parks the request to
  /// await its flush completion (flush_end = the out-buffer byte counter
  /// after its response, which AppendResponse just advanced).
  void FinishRequestStages(Connection* conn, PendingRequest req,
                           uint64_t queued_ticks) {
    using obs::RequestStage;
    req.queued_ticks = queued_ticks;
    req.flush_end = conn->bytes_queued;
    RecordStage(req.op, RequestStage::kParse,
                req.stages[RequestStage::kParse]);
    RecordStage(req.op, RequestStage::kDispatch,
                req.stages[RequestStage::kDispatch]);
    RecordStage(req.op, RequestStage::kExecute,
                req.stages[RequestStage::kExecute]);
    // Commit-pipeline stages only exist for durable commits; recording
    // zeros for every scan would drown the histograms that matter.
    if (req.stages[RequestStage::kWalSync] > 0) {
      RecordStage(req.op, RequestStage::kWalSync,
                  req.stages[RequestStage::kWalSync]);
    }
    if (req.stages[RequestStage::kCommitPublish] > 0) {
      RecordStage(req.op, RequestStage::kCommitPublish,
                  req.stages[RequestStage::kCommitPublish]);
    }
    conn->pending_requests.push_back(std::move(req));
  }

  bool HandleHello(Worker* worker, Connection* conn, WireReader& reader) {
    const uint32_t magic = reader.U32();
    const uint16_t min_version = reader.U16();
    const uint16_t max_version = reader.U16();
    // v2-capable clients append the pipeline window they want; a v1
    // hello simply ends here.
    uint32_t requested_window = 0;
    if (reader.ok() && reader.remaining() >= sizeof(uint32_t)) {
      requested_window = reader.U32();
    }
    if (!reader.ok() || magic != kHelloMagic) {
      ProtocolError(worker, conn, Opcode::kHello, "bad hello magic");
      return false;
    }
    if (min_version > kProtocolVersionMax ||
        max_version < kProtocolVersionMin || min_version > max_version) {
      // Clean cross-version failure: the client learns the server's
      // supported range instead of a dropped connection.
      AppendResponse(
          conn,
          MakeErrorPayload(
              Opcode::kHello, WireCode::kNotSupported,
              "no common protocol version: client [" +
                  std::to_string(min_version) + "," +
                  std::to_string(max_version) + "], server [" +
                  std::to_string(kProtocolVersionMin) + "," +
                  std::to_string(kProtocolVersionMax) + "]"));
      conn->close_after_flush = true;
      FlushOut(worker, conn);
      return false;
    }
    if (draining()) {
      AppendResponse(conn, MakeErrorPayload(Opcode::kHello,
                                            WireCode::kDraining,
                                            "server is draining"));
      conn->close_after_flush = true;
      FlushOut(worker, conn);
      return false;
    }
    const uint16_t chosen = std::min(max_version, kProtocolVersionMax);
    conn->handshaken = true;
    std::vector<uint8_t> response;
    WireWriter writer(&response);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U16(chosen);
    writer.U8(static_cast<uint8_t>(db_->options().mode));
    writer.U64(conn->id);
    uint32_t window = 0;
    if (chosen >= 2) {
      const uint32_t cap = std::max(1u, options_.max_pipeline_window);
      window = requested_window == 0 ? kDefaultPipelineWindow
                                     : requested_window;
      window = std::min(std::max(window, 1u), cap);
      writer.U32(window);
    }
    // The hello response is v1-framed even when v2 was negotiated (the
    // client cannot know the outcome before reading it); everything
    // after this frame — in both directions — is tagged.
    AppendResponse(conn, std::move(response));
    if (chosen >= 2) {
      conn->version = chosen;
      conn->window = window;
    }
    return true;
  }

  bool serving_degraded() const {
    return db_->serving_state() == core::ServingState::kServingDegraded;
  }

  /// "server warming, N% drained (M of T rows)" — tells a shedding
  /// client how far along the recovery drain is, so it can back off
  /// proportionally instead of blind-retrying.
  std::string WarmingMessage() const {
    const recovery::RecoveryProgress progress = db_->recovery_progress();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "server warming, %.0f%% drained (%llu of %llu rows)",
                  progress.percent(),
                  static_cast<unsigned long long>(progress.restored_rows),
                  static_cast<unsigned long long>(progress.total_rows));
    return buf;
  }

  /// Ops that never get shed while warming: they don't touch table data
  /// and are exactly what a client needs to observe the warming state.
  static bool ExemptFromWarmingShed(Opcode op) {
    switch (op) {
      case Opcode::kHello:
      case Opcode::kPing:
      case Opcode::kStats:
      case Opcode::kRecoveryInfo:
      case Opcode::kDrain:
      // 2PC decisions and the in-doubt handshake must never be shed:
      // the coordinator's recovery protocol depends on them to converge
      // prepared transactions, and both are O(1) engine work.
      case Opcode::kDecide:
      case Opcode::kInDoubt:
        return true;
      default:
        return false;
    }
  }

  /// Load shedding during degraded serving: engine-touching requests
  /// beyond the (tighter) warming inflight cap get a retryable kWarming
  /// rejection so the drain keeps making progress under client load.
  bool ShedWhileWarming(Opcode op, int inflight,
                        std::vector<uint8_t>* response) {
    if (ExemptFromWarmingShed(op) || !serving_degraded()) return false;
    const int cap = options_.degraded_max_inflight > 0
                        ? options_.degraded_max_inflight
                        : std::max(1, options_.max_inflight / 8);
    if (inflight < cap) return false;
    warming_rejected_.fetch_add(1, std::memory_order_relaxed);
    warming_counter_.Inc();
    if (obs::BlackboxWriter* bb = db_->heap().blackbox()) {
      bb->Record(obs::BlackboxEventType::kWarmingShed,
                 static_cast<uint64_t>(inflight));
    }
    *response = MakeErrorPayload(op, WireCode::kWarming, WarmingMessage());
    return true;
  }

  std::vector<uint8_t> Execute(Opcode op, Connection* conn,
                               WireReader& reader) {
    switch (op) {
      case Opcode::kPing:
        return MakeStatusPayload(op, Status::OK());
      case Opcode::kBegin:
        return ExecBegin(conn);
      case Opcode::kCommit:
        return ExecCommit(conn, reader);
      case Opcode::kAbort:
        return ExecAbort(conn, reader);
      case Opcode::kPrepare:
        return ExecPrepare(conn, reader);
      case Opcode::kDecide:
        return ExecDecide(reader);
      case Opcode::kInDoubt:
        return ExecInDoubt();
      case Opcode::kInsert:
        return ExecInsert(conn, reader);
      case Opcode::kUpdate:
        return ExecUpdate(conn, reader);
      case Opcode::kDelete:
        return ExecDelete(conn, reader);
      case Opcode::kDmlBatch:
        return ExecDmlBatch(conn, reader);
      case Opcode::kScanEqual:
      case Opcode::kScanRange:
        return ExecScan(op, conn, reader);
      case Opcode::kCount:
        return ExecCount(conn, reader);
      case Opcode::kCreateTable:
        return ExecCreateTable(reader);
      case Opcode::kCreateIndex:
        return ExecCreateIndex(reader);
      case Opcode::kStats:
        return ExecStats();
      case Opcode::kRecoveryInfo:
        return MakeOkString(op, RecoveryInfoJson());
      case Opcode::kCheckpoint: {
        if (serving_degraded()) {
          // The engine would refuse anyway (placeholder rows must not be
          // checkpointed); surface it as the retryable warming code so
          // clients know to simply wait for the drain.
          return MakeErrorPayload(op, WireCode::kWarming, WarmingMessage());
        }
        std::lock_guard<std::mutex> guard(ddl_mutex_);
        return MakeStatusPayload(op, db_->Checkpoint());
      }
      case Opcode::kDrain:
        // The OK ack is queued before Drain() flips the flag (caller
        // handles that ordering); nothing else to do here.
        return MakeStatusPayload(op, Status::OK());
      case Opcode::kHello:
        break;  // handled before Execute()
    }
    return MakeErrorPayload(op, WireCode::kInternal, "unroutable opcode");
  }

  static std::vector<uint8_t> MakeOkString(Opcode op,
                                           const std::string& body) {
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(op));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Str(body);
    return payload;
  }

  std::vector<uint8_t> ExecBegin(Connection* conn) {
    if (conn->txn_open) {
      return MakeErrorPayload(
          Opcode::kBegin, WireCode::kInvalidArgument,
          "session already has an open transaction (tid " +
              std::to_string(conn->txn.tid()) + ")");
    }
    auto tx_result = db_->Begin();
    if (!tx_result.ok()) {
      return MakeStatusPayload(Opcode::kBegin, tx_result.status());
    }
    conn->txn = *tx_result;
    conn->txn_open = true;
    open_txns_.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kBegin));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(conn->txn.tid());
    writer.U64(conn->txn.snapshot());
    return payload;
  }

  /// Resolves the request's transaction id against the session. 0 means
  /// "the session's open transaction".
  Status SessionTxn(Connection* conn, uint64_t tid) {
    if (!conn->txn_open) {
      return Status::InvalidArgument("no open transaction on this session");
    }
    if (tid != 0 && tid != conn->txn.tid()) {
      return Status::InvalidArgument(
          "transaction id " + std::to_string(tid) +
          " does not match this session's open transaction " +
          std::to_string(conn->txn.tid()));
    }
    return Status::OK();
  }

  // Sessions on different worker threads commit through the engine's
  // concurrent pipeline — no global commit lock: persists and row
  // stamping run in parallel, only visibility publication is serialised
  // (in CID order, batched). The WAL engines additionally fold
  // concurrent sessions' fsyncs into one group commit.
  std::vector<uint8_t> ExecCommit(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kCommit, WireCode::kInvalidArgument,
                              "malformed commit body");
    }
    Status status = SessionTxn(conn, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kCommit, status);
    const bool sampled = conn->txn.sampled();
    status = db_->Commit(conn->txn);
    if (!conn->txn.active()) {
      conn->txn_open = false;
      open_txns_.fetch_add(-1, std::memory_order_relaxed);
    }
    if (!status.ok()) return MakeStatusPayload(Opcode::kCommit, status);
    // Hand the commit pipeline's stage timings to the request-level
    // attribution (only on success — a failed commit never reached the
    // publish stage and must not report a predecessor's numbers).
    conn->last_wal_sync_ns = conn->txn.wal_sync_ns();
    conn->last_commit_publish_ns = conn->txn.commit_publish_ns();
    conn->last_commit_sampled = sampled;
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCommit));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(conn->txn.commit_cid());
    return payload;
  }

  std::vector<uint8_t> ExecAbort(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kAbort, WireCode::kInvalidArgument,
                              "malformed abort body");
    }
    Status status = SessionTxn(conn, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kAbort, status);
    status = db_->Abort(conn->txn);
    conn->txn_open = false;
    open_txns_.fetch_add(-1, std::memory_order_relaxed);
    return MakeStatusPayload(Opcode::kAbort, status);
  }

  /// 2PC phase one. Body: [u64 tid][u64 gtid]. On success the
  /// transaction detaches from the session (the prepared registry owns
  /// it; a session drop must not abort it), so `txn_open` flips false —
  /// only a coordinator kDecide moves it further. On failure the
  /// transaction stays owned by the session and the coordinator aborts
  /// it through the normal kAbort path.
  std::vector<uint8_t> ExecPrepare(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const uint64_t gtid = reader.U64();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kPrepare, WireCode::kInvalidArgument,
                              "malformed prepare body");
    }
    Status status = SessionTxn(conn, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kPrepare, status);
    status = db_->Prepare(conn->txn, gtid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kPrepare, status);
    conn->txn = txn::Transaction();
    conn->txn_open = false;
    open_txns_.fetch_add(-1, std::memory_order_relaxed);
    return MakeStatusPayload(Opcode::kPrepare, Status::OK());
  }

  /// 2PC phase two. Body: [u64 gtid][u8 commit]. Deliberately not bound
  /// to any session transaction: the decision may arrive on a fresh
  /// connection after the preparing session (or the whole server) died.
  /// Idempotent — an unknown gtid answers OK.
  std::vector<uint8_t> ExecDecide(WireReader& reader) {
    const uint64_t gtid = reader.U64();
    const uint8_t commit = reader.U8();
    if (!reader.ok() || commit > 1) {
      return MakeErrorPayload(Opcode::kDecide, WireCode::kInvalidArgument,
                              "malformed decide body");
    }
    return MakeStatusPayload(Opcode::kDecide,
                             db_->Decide(gtid, commit != 0));
  }

  /// Recovery handshake: every prepared-but-undecided gtid on this
  /// shard. Body: empty. Response: [u32 count][u64 gtid]*.
  std::vector<uint8_t> ExecInDoubt() {
    const std::vector<uint64_t> gtids = db_->InDoubtGtids();
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kInDoubt));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U32(static_cast<uint32_t>(gtids.size()));
    for (uint64_t gtid : gtids) writer.U64(gtid);
    return payload;
  }

  std::vector<uint8_t> ExecInsert(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table_name = reader.Str();
    const std::vector<storage::Value> row = reader.Row();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kInsert, WireCode::kInvalidArgument,
                              "malformed insert body");
    }
    Status status = SessionTxn(conn, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kInsert, status);
    auto table_result = db_->GetTable(table_name);
    if (!table_result.ok()) {
      return MakeStatusPayload(Opcode::kInsert, table_result.status());
    }
    auto loc_result = db_->Insert(conn->txn, *table_result, row);
    if (!loc_result.ok()) {
      return MakeStatusPayload(Opcode::kInsert, loc_result.status());
    }
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kInsert));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Loc(*loc_result);
    return payload;
  }

  std::vector<uint8_t> ExecUpdate(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table_name = reader.Str();
    const storage::RowLocation loc = reader.Loc();
    const std::vector<storage::Value> row = reader.Row();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kUpdate, WireCode::kInvalidArgument,
                              "malformed update body");
    }
    Status status = SessionTxn(conn, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kUpdate, status);
    auto table_result = db_->GetTable(table_name);
    if (!table_result.ok()) {
      return MakeStatusPayload(Opcode::kUpdate, table_result.status());
    }
    status = CheckLocation(*table_result, loc);
    if (!status.ok()) return MakeStatusPayload(Opcode::kUpdate, status);
    auto loc_result = db_->Update(conn->txn, *table_result, loc, row);
    if (!loc_result.ok()) {
      return MakeStatusPayload(Opcode::kUpdate, loc_result.status());
    }
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kUpdate));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Loc(*loc_result);
    return payload;
  }

  std::vector<uint8_t> ExecDelete(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table_name = reader.Str();
    const storage::RowLocation loc = reader.Loc();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kDelete, WireCode::kInvalidArgument,
                              "malformed delete body");
    }
    Status status = SessionTxn(conn, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kDelete, status);
    auto table_result = db_->GetTable(table_name);
    if (!table_result.ok()) {
      return MakeStatusPayload(Opcode::kDelete, table_result.status());
    }
    status = CheckLocation(*table_result, loc);
    if (!status.ok()) return MakeStatusPayload(Opcode::kDelete, status);
    return MakeStatusPayload(Opcode::kDelete,
                             db_->Delete(conn->txn, *table_result, loc));
  }

  /// Pipelined autocommit write: [u32 count] then per op [u8 kind]
  /// + body (1=insert: [str table][row], 2=update: [str table][loc][row],
  /// 3=delete: [str table][loc]). The whole batch runs as ONE engine
  /// transaction — every op applies under one transaction-stage pass,
  /// then a single commit pays one group-commit fsync and one ordered
  /// publish for the lot. Atomic: any failing op aborts the batch and
  /// the error names its index. Response: [u32 count][loc]*count[u64 cid]
  /// (a delete echoes the location it removed).
  std::vector<uint8_t> ExecDmlBatch(Connection* conn, WireReader& reader) {
    constexpr Opcode kOp = Opcode::kDmlBatch;
    if (conn->txn_open) {
      return MakeErrorPayload(
          kOp, WireCode::kInvalidArgument,
          "dml_batch is autocommit; commit or abort the session "
          "transaction first");
    }
    const uint32_t count = reader.U32();
    if (!reader.ok() || count == 0) {
      return MakeErrorPayload(kOp, WireCode::kInvalidArgument,
                              "malformed dml_batch body");
    }
    auto tx_result = db_->Begin();
    if (!tx_result.ok()) {
      return MakeStatusPayload(kOp, tx_result.status());
    }
    txn::Transaction tx = std::move(*tx_result);
    const bool sampled = tx.sampled();
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(kOp));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U32(count);
    // One-entry table cache: batches overwhelmingly target one table,
    // and skipping the name lookup is part of the single-pass promise.
    storage::Table* cached_table = nullptr;
    std::string cached_name;
    Status failure;
    uint32_t fail_index = 0;
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t kind = reader.U8();
      const std::string table_name = reader.Str();
      if (!reader.ok() || kind < 1 || kind > 3) {
        failure = Status::InvalidArgument("malformed dml_batch op");
        fail_index = i;
        break;
      }
      storage::Table* table = cached_table;
      if (table == nullptr || table_name != cached_name) {
        auto table_result = db_->GetTable(table_name);
        if (!table_result.ok()) {
          failure = table_result.status();
          fail_index = i;
          break;
        }
        table = *table_result;
        cached_table = table;
        cached_name = table_name;
      }
      if (kind == 1) {  // insert
        const std::vector<storage::Value> row = reader.Row();
        if (!reader.ok()) {
          failure = Status::InvalidArgument("malformed insert row");
          fail_index = i;
          break;
        }
        auto loc_result = db_->Insert(tx, table, row);
        if (!loc_result.ok()) {
          failure = loc_result.status();
          fail_index = i;
          break;
        }
        writer.Loc(*loc_result);
      } else if (kind == 2) {  // update
        const storage::RowLocation loc = reader.Loc();
        const std::vector<storage::Value> row = reader.Row();
        if (!reader.ok()) {
          failure = Status::InvalidArgument("malformed update op");
          fail_index = i;
          break;
        }
        failure = CheckLocation(table, loc);
        if (failure.ok()) {
          auto loc_result = db_->Update(tx, table, loc, row);
          if (loc_result.ok()) {
            writer.Loc(*loc_result);
          } else {
            failure = loc_result.status();
          }
        }
        if (!failure.ok()) {
          fail_index = i;
          break;
        }
      } else {  // delete
        const storage::RowLocation loc = reader.Loc();
        if (!reader.ok()) {
          failure = Status::InvalidArgument("malformed delete op");
          fail_index = i;
          break;
        }
        failure = CheckLocation(table, loc);
        if (failure.ok()) failure = db_->Delete(tx, table, loc);
        if (!failure.ok()) {
          fail_index = i;
          break;
        }
        writer.Loc(loc);
      }
    }
    if (!failure.ok()) {
      (void)db_->Abort(tx);
      RecycleBuf(conn, std::move(payload));
      return MakeErrorPayload(
          kOp, WireCodeFromStatus(failure),
          "op " + std::to_string(fail_index) + ": " +
              std::string(failure.message()));
    }
    Status status = db_->Commit(tx);
    if (!status.ok()) {
      if (tx.active()) (void)db_->Abort(tx);
      RecycleBuf(conn, std::move(payload));
      return MakeStatusPayload(kOp, status);
    }
    conn->last_wal_sync_ns = tx.wal_sync_ns();
    conn->last_commit_publish_ns = tx.commit_publish_ns();
    conn->last_commit_sampled = sampled;
    writer.U64(tx.commit_cid());
    return payload;
  }

  /// Row locations come from an untrusted peer: bound-check them before
  /// they reach mvcc() pointer math.
  static Status CheckLocation(storage::Table* table,
                              storage::RowLocation loc) {
    const uint64_t rows =
        loc.in_main ? table->main_row_count() : table->delta_row_count();
    if (loc.row >= rows) {
      return Status::InvalidArgument(
          "row location " + std::to_string(loc.row) + " out of range (" +
          (loc.in_main ? "main" : "delta") + " holds " +
          std::to_string(rows) + " rows)");
    }
    return Status::OK();
  }

  std::vector<uint8_t> ExecScan(Opcode op, Connection* conn,
                                WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table_name = reader.Str();
    const uint32_t column = reader.U32();
    const storage::Value lo = reader.Value();
    const storage::Value hi =
        op == Opcode::kScanRange ? reader.Value() : lo;
    const uint32_t limit = reader.U32();
    if (!reader.ok()) {
      return MakeErrorPayload(op, WireCode::kInvalidArgument,
                              "malformed scan body");
    }
    auto table_result = db_->GetTable(table_name);
    if (!table_result.ok()) {
      return MakeStatusPayload(op, table_result.status());
    }
    storage::Table* table = *table_result;
    if (column >= table->schema().num_columns()) {
      return MakeErrorPayload(op, WireCode::kInvalidArgument,
                              "column index out of range");
    }
    storage::Cid snapshot;
    storage::Tid read_tid;
    if (tid == 0) {
      snapshot = db_->ReadSnapshot();
      read_tid = storage::kTidNone;
    } else {
      Status status = SessionTxn(conn, tid);
      if (!status.ok()) return MakeStatusPayload(op, status);
      snapshot = conn->txn.snapshot();
      read_tid = conn->txn.tid();
    }
    Result<std::vector<storage::RowLocation>> locs_result =
        op == Opcode::kScanEqual
            ? db_->ScanEqual(table, column, lo, snapshot, read_tid)
            : db_->ScanRange(table, column, lo, hi, snapshot, read_tid);
    if (!locs_result.ok()) {
      return MakeStatusPayload(op, locs_result.status());
    }
    std::vector<storage::RowLocation>& locs = *locs_result;
    bool truncated = false;
    if (limit != 0 && locs.size() > limit) {
      locs.resize(limit);
      truncated = true;
    }
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(op));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    const size_t truncated_at = payload.size();
    writer.U8(0);  // patched below if the payload cap truncates
    const size_t count_at = payload.size();
    writer.U32(0);  // patched with the emitted row count
    uint32_t emitted = 0;
    for (const storage::RowLocation& loc : locs) {
      if (payload.size() > kMaxResultPayload) {
        truncated = true;
        break;
      }
      writer.Loc(loc);
      writer.Row(core::MaterializeRows(table, {loc})[0]);
      ++emitted;
    }
    payload[truncated_at] = truncated ? 1 : 0;
    std::memcpy(payload.data() + count_at, &emitted, sizeof(emitted));
    return payload;
  }

  std::vector<uint8_t> ExecCount(Connection* conn, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table_name = reader.Str();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kCount, WireCode::kInvalidArgument,
                              "malformed count body");
    }
    auto table_result = db_->GetTable(table_name);
    if (!table_result.ok()) {
      return MakeStatusPayload(Opcode::kCount, table_result.status());
    }
    storage::Cid snapshot = db_->ReadSnapshot();
    storage::Tid read_tid = storage::kTidNone;
    if (tid != 0) {
      Status status = SessionTxn(conn, tid);
      if (!status.ok()) return MakeStatusPayload(Opcode::kCount, status);
      snapshot = conn->txn.snapshot();
      read_tid = conn->txn.tid();
    }
    const uint64_t count =
        core::CountRows(*table_result, snapshot, read_tid);
    std::vector<uint8_t> payload = TakeBuf(conn);
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCount));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(count);
    return payload;
  }

  std::vector<uint8_t> ExecCreateTable(WireReader& reader) {
    const std::string name = reader.Str();
    const uint16_t num_columns = reader.U16();
    std::vector<storage::ColumnDef> columns;
    columns.reserve(num_columns);
    for (uint16_t i = 0; i < num_columns && reader.ok(); ++i) {
      storage::ColumnDef def;
      def.name = reader.Str();
      def.type = static_cast<storage::DataType>(reader.U8());
      columns.push_back(std::move(def));
    }
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kCreateTable,
                              WireCode::kInvalidArgument,
                              "malformed create-table body");
    }
    auto schema_result = storage::Schema::Make(std::move(columns));
    if (!schema_result.ok()) {
      return MakeStatusPayload(Opcode::kCreateTable,
                               schema_result.status());
    }
    std::lock_guard<std::mutex> guard(ddl_mutex_);
    auto table_result = db_->CreateTable(name, *schema_result);
    if (!table_result.ok()) {
      return MakeStatusPayload(Opcode::kCreateTable,
                               table_result.status());
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCreateTable));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64((*table_result)->id());
    return payload;
  }

  std::vector<uint8_t> ExecCreateIndex(WireReader& reader) {
    const std::string table_name = reader.Str();
    const uint32_t column = reader.U32();
    const uint8_t kind = reader.U8();
    if (!reader.ok() || kind > storage::kIndexSkipList) {
      return MakeErrorPayload(Opcode::kCreateIndex,
                              WireCode::kInvalidArgument,
                              "malformed create-index body");
    }
    std::lock_guard<std::mutex> guard(ddl_mutex_);
    return MakeStatusPayload(
        Opcode::kCreateIndex,
        db_->CreateIndex(table_name, column,
                         static_cast<storage::PIndexKind>(kind)));
  }

  /// The recovery report plus the live serving state and drain progress
  /// (the report alone is a point-in-time snapshot of the open).
  std::string RecoveryInfoJson() const {
    std::string json = db_->last_recovery_report().ToJson();
    const recovery::RecoveryProgress progress = db_->recovery_progress();
    std::ostringstream extra;
    extra << ",\"serving_state\":\""
          << (serving_degraded() ? "degraded" : "ready")
          << "\",\"recovery_progress\":{\"total_rows\":"
          << progress.total_rows
          << ",\"restored_rows\":" << progress.restored_rows
          << ",\"percent\":" << progress.percent()
          << ",\"drained\":" << (progress.drained ? "true" : "false")
          << "}}";
    // Splice before the report's closing brace.
    json.pop_back();
    json += extra.str();
    return json;
  }

  /// {"threshold_us":...,"count":N,"recent":[{op,total_us,dominant,
  /// stages_us:{...}}]} — the newest captures, oldest first.
  std::string SlowRequestsJson() {
    constexpr size_t kMaxRecent = 8;
    std::vector<obs::SlowRequestRecord> records = slow_ring_.Snapshot();
    const size_t begin =
        records.size() > kMaxRecent ? records.size() - kMaxRecent : 0;
    std::ostringstream body;
    body << "{\"threshold_us\":" << options_.slow_request_us
         << ",\"count\":" << slow_ring_.total() << ",\"recent\":[";
    for (size_t i = begin; i < records.size(); ++i) {
      const obs::SlowRequestRecord& rec = records[i];
      if (i != begin) body << ",";
      body << "{\"seq\":" << rec.seq << ",\"op\":\""
           << OpcodeName(static_cast<Opcode>(rec.opcode))
           << "\",\"total_us\":"
           << static_cast<double>(rec.total_ns) / 1e3 << ",\"dominant\":\""
           << obs::RequestStageName(rec.stages.Dominant())
           << "\",\"stages_us\":{";
      for (size_t s = 0; s < obs::kNumRequestStages; ++s) {
        if (s != 0) body << ",";
        body << "\"" << obs::RequestStageName(s)
             << "\":" << static_cast<double>(rec.stages.ns[s]) / 1e3;
      }
      body << "}}";
    }
    body << "]}";
    return body.str();
  }

  std::vector<uint8_t> ExecStats() {
    const ServerCounters c = counters();
    obs::SpanNode request_trace;
    {
      std::lock_guard<std::mutex> guard(request_trace_mutex_);
      request_trace = last_request_trace_;
    }
    std::ostringstream body;
    body << "{\"server\":{\"connections\":" << c.open_connections
         << ",\"accepted\":" << c.accepted
         << ",\"overload_rejected\":" << c.overload_rejected
         << ",\"warming_rejected\":" << c.warming_rejected
         << ",\"protocol_errors\":" << c.protocol_errors
         << ",\"requests\":" << c.requests
         << ",\"open_transactions\":" << c.open_transactions
         << ",\"active_txns\":" << db_->txn_manager().ActiveCount()
         << ",\"draining\":" << (draining() ? "true" : "false")
         << ",\"serving_state\":\""
         << (serving_degraded() ? "degraded" : "ready") << "\"}"
         << ",\"slow_requests\":" << SlowRequestsJson();
    if (!request_trace.name.empty()) {
      body << ",\"last_request_trace\":" << request_trace.ToJson();
    }
    body << ",\"metrics\":" << db_->MetricsSnapshot().ToJson()
         << ",\"timeline\":" << db_->TimelineJson() << "}";
    return MakeOkString(Opcode::kStats, body.str());
  }

  core::Database* db_;
  const ServerOptions options_;
  OwnedFd listen_fd_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex join_mutex_;
  std::mutex ddl_mutex_;

  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<int> open_conns_{0};
  std::atomic<int> open_txns_{0};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> overload_rejected_{0};
  std::atomic<uint64_t> warming_rejected_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> requests_{0};

  obs::Histogram& latency_hist_;
  obs::Counter& requests_counter_;
  obs::Counter& overload_counter_;
  obs::Counter& warming_counter_;
  obs::Counter& protocol_error_counter_;
  obs::Counter& accepted_counter_;
  obs::Gauge& conns_gauge_;
  obs::Gauge& inflight_gauge_;
  obs::Gauge& queue_gauge_;
  obs::Counter* op_counters_[256] = {};
  obs::Histogram* stage_hists_[256][obs::kNumRequestStages] = {};
  obs::Counter& slow_request_counter_;
  obs::SlowRequestRing slow_ring_;

  /// Last completed sampled request's wire→txn→WAL span tree; guarded
  /// because completion runs on whichever worker flushed the response.
  mutable std::mutex request_trace_mutex_;
  obs::SpanNode last_request_trace_;

  friend class Server;
};

Server::Server(std::unique_ptr<ServerImpl> impl) : impl_(std::move(impl)) {}

Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Start(core::Database* db,
                                              const ServerOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("server needs a database");
  }
  auto impl = std::make_unique<ServerImpl>(db, options);
  HYRISE_NV_RETURN_NOT_OK(impl->Start());
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

uint16_t Server::port() const { return impl_->port(); }
void Server::Drain() { impl_->Drain(); }
void Server::Wait() { impl_->Wait(); }
bool Server::draining() const { return impl_->draining(); }
ServerCounters Server::counters() const { return impl_->counters(); }

}  // namespace hyrise_nv::net
