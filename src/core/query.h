#ifndef HYRISE_NV_CORE_QUERY_H_
#define HYRISE_NV_CORE_QUERY_H_

#include <vector>

#include "common/status.h"
#include "index/index_set.h"
#include "storage/table.h"

namespace hyrise_nv::core {

/// Three-way comparison of two same-typed values.
int CompareValues(const storage::Value& a, const storage::Value& b);

/// Rows with lo <= column <= hi, visible to (snapshot, tid). Exploits the
/// sorted main dictionary (range of value ids) and the group-key index
/// when available; the delta side pre-computes a per-dictionary-id match
/// mask, so rows are filtered on encoded ids only.
Result<std::vector<storage::RowLocation>> ScanRange(
    storage::Table* table, size_t column, const storage::Value& lo,
    const storage::Value& hi, storage::Cid snapshot, storage::Tid tid,
    const index::IndexSet* indexes = nullptr);

/// Number of rows visible to (snapshot, tid).
uint64_t CountRows(storage::Table* table, storage::Cid snapshot,
                   storage::Tid tid);

/// Sum of an int64 column over visible rows (dictionary-decoded once per
/// distinct value).
Result<int64_t> SumInt64(storage::Table* table, size_t column,
                         storage::Cid snapshot, storage::Tid tid);

/// Sum of a double column over visible rows.
Result<double> SumDouble(storage::Table* table, size_t column,
                         storage::Cid snapshot, storage::Tid tid);

/// Materialises full rows for the given locations.
std::vector<std::vector<storage::Value>> MaterializeRows(
    storage::Table* table, const std::vector<storage::RowLocation>& locs);

}  // namespace hyrise_nv::core

#endif  // HYRISE_NV_CORE_QUERY_H_
