#ifndef HYRISE_NV_CORE_DATABASE_H_
#define HYRISE_NV_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "index/index_set.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "recovery/recovery_driver.h"
#include "storage/catalog.h"
#include "storage/merge.h"
#include "txn/txn_manager.h"

namespace hyrise_nv::core {

/// Availability state of an open database. A WAL open under
/// LogRecoveryPolicy::kServeOnDemand starts kServingDegraded: reads and
/// writes work (value reads restore pending rows on demand), but
/// checkpoint/merge/index DDL are refused until the background drain
/// finishes and flips the engine to kReady.
enum class ServingState {
  kReady,
  kServingDegraded,
};

/// The Hyrise-NV storage engine facade: tables, MVCC transactions,
/// secondary indexes, merges, and the durability mode chosen in
/// DatabaseOptions (instant-restart NVM vs. log-based baselines).
///
/// Thread safety: concurrent transactions from multiple threads are
/// supported; DDL (CreateTable/CreateIndex) and Merge require quiescence
/// (no concurrent writers).
class Database {
 public:
  /// Creates a fresh database.
  static Result<std::unique_ptr<Database>> Create(
      const DatabaseOptions& options);

  /// Opens an existing database, running the mode's recovery path.
  /// Inspect `last_recovery_report()` for what recovery did and cost.
  static Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options);

  /// Simulates a power failure and recovers: everything not durable under
  /// the mode's rules is lost. Consumes the old handle, returns the
  /// recovered one.
  static Result<std::unique_ptr<Database>> CrashAndRecover(
      std::unique_ptr<Database> db);

  /// Offline deep verification of the NVM image named by `options`:
  /// maps it read-only and walks every persistent structure. Never
  /// mutates the image and never runs recovery — safe on corrupt input.
  static Result<recovery::VerifyReport> VerifyImage(
      const DatabaseOptions& options);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Database);

  // --- DDL ---------------------------------------------------------------

  Result<storage::Table*> CreateTable(const std::string& name,
                                      const storage::Schema& schema);
  /// Fails with Corruption for tables quarantined by a salvage open.
  Result<storage::Table*> GetTable(const std::string& name) const;
  Status CreateIndex(const std::string& table_name, size_t column,
                     storage::PIndexKind kind = storage::kIndexHash);

  /// Ordered (skip-list) index: equality and range lookups.
  Status CreateOrderedIndex(const std::string& table_name, size_t column) {
    return CreateIndex(table_name, column, storage::kIndexSkipList);
  }

  // --- Transactions -------------------------------------------------------

  /// Fails when the database is read-only: beginning a transaction
  /// claims TID blocks, which mutates the persistent image.
  Result<txn::Transaction> Begin() {
    HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
    return txn_manager_->Begin();
  }
  Status Commit(txn::Transaction& tx);
  Status Abort(txn::Transaction& tx) { return txn_manager_->Abort(tx); }

  // --- Two-phase commit (DESIGN.md §16) ------------------------------------

  /// Phase one: durably prepares `tx` under the coordinator-issued global
  /// transaction id. On success the transaction is detached from its
  /// session (kPrepared); only Decide moves it further. On failure the
  /// transaction stays active and the caller should abort it.
  Status Prepare(txn::Transaction& tx, uint64_t gtid);

  /// Phase two: commits or aborts the prepared transaction `gtid`.
  /// Idempotent — unknown gtids answer OK.
  Status Decide(uint64_t gtid, bool commit);

  /// Gtids of every prepared-but-undecided transaction (recovery
  /// handshake answer).
  std::vector<uint64_t> InDoubtGtids() const {
    return txn_manager_->InDoubtGtids();
  }

  // --- DML (within a transaction) ------------------------------------------

  /// Inserts a row; returns its location.
  Result<storage::RowLocation> Insert(txn::Transaction& tx,
                                      storage::Table* table,
                                      const std::vector<storage::Value>& row);

  /// Deletes a row that is visible to `tx`.
  Status Delete(txn::Transaction& tx, storage::Table* table,
                storage::RowLocation loc);

  /// Update = delete old version + insert new one (insert-only MVCC).
  Result<storage::RowLocation> Update(
      txn::Transaction& tx, storage::Table* table, storage::RowLocation loc,
      const std::vector<storage::Value>& row);

  /// Convenience: runs a single-operation transaction.
  Status InsertAutoCommit(storage::Table* table,
                          const std::vector<storage::Value>& row);

  // --- Queries (see also core/query.h) -------------------------------------

  /// Rows of `table` where column == value, visible to (snapshot, tid).
  /// Uses indexes when present. Pass an active transaction's snapshot/tid
  /// or ReadSnapshot()/kTidNone for an ad-hoc read.
  Result<std::vector<storage::RowLocation>> ScanEqual(
      storage::Table* table, size_t column, const storage::Value& value,
      storage::Cid snapshot, storage::Tid tid) const;

  /// Rows of `table` where lo <= column <= hi, visible to (snapshot,
  /// tid). Uses an ordered index when one exists; degraded-aware like
  /// ScanEqual (restores the touched key range on demand first).
  Result<std::vector<storage::RowLocation>> ScanRange(
      storage::Table* table, size_t column, const storage::Value& lo,
      const storage::Value& hi, storage::Cid snapshot,
      storage::Tid tid) const;

  storage::Cid ReadSnapshot() const { return txn_manager_->ReadSnapshot(); }

  // --- Maintenance ---------------------------------------------------------

  /// Stop-the-world delta→main merge (requires no active transactions).
  /// In WAL modes a checkpoint follows immediately, because logged row
  /// positions reference the pre-merge layout.
  Result<storage::MergeStats> Merge(const std::string& table_name);

  /// Writes a checkpoint now (WAL modes; no-op for kNvm/kNone).
  Status Checkpoint();

  /// Clean shutdown: marks the region clean / syncs files.
  Status Close();

  // --- Introspection -------------------------------------------------------

  const DatabaseOptions& options() const { return options_; }
  const RecoveryReport& last_recovery_report() const { return recovery_; }

  /// kServingDegraded while an on-demand recovery drain is in flight;
  /// kReady otherwise (including every non-WAL mode and eager replay).
  ServingState serving_state() const {
    return recovery_driver_ && recovery_driver_->serving_degraded()
               ? ServingState::kServingDegraded
               : ServingState::kReady;
  }

  /// Restoration progress of an on-demand recovery (all-done/100% when
  /// the database never opened degraded).
  recovery::RecoveryProgress recovery_progress() const {
    if (recovery_driver_) return recovery_driver_->progress();
    return recovery::RecoveryProgress{};
  }

  /// Blocks until the background drain finishes and the engine is fully
  /// recovered (immediately OK when not degraded). Fails with
  /// Status::Aborted after `timeout_ms`.
  Status WaitUntilRecovered(uint64_t timeout_ms);

  /// Point-in-time snapshot of every engine metric. Syncs the passive
  /// sources (NVM region stats, WAL writer totals, allocator usage) into
  /// the registry first, so the snapshot is complete even for metrics no
  /// hot path mirrors live.
  obs::MetricsSnapshot MetricsSnapshot();

  /// JSON time series from the background historian (empty-object-ish
  /// `{"samples":[]}` shape when options.enable_history_sampler is off).
  std::string HistoryJson() const;
  /// The historian, or nullptr when disabled.
  obs::HistorySampler* history_sampler() { return history_.get(); }

  /// Phase-annotated timeline from the background recorder (same
  /// `{"samples":[]}` shape when options.enable_timeline is off).
  std::string TimelineJson() const;
  /// CSV form of the same timeline (header row + one row per sample).
  std::string TimelineCsv() const;
  /// The timeline recorder, or nullptr when disabled.
  obs::TimelineRecorder* timeline() { return timeline_.get(); }

  /// Mirrors passively-maintained totals (NVM region stats, WAL writer
  /// fields, allocator usage, process RSS, serving state) into the
  /// metrics registry. MetricsSnapshot() and each timeline tick call
  /// this; call it directly before reading those gauges from the
  /// registry without taking a snapshot.
  void SyncPassiveMetrics();

  /// Span tree of the most recent trace-sampled commit (empty before the
  /// first sample or when options.txn_sample_every is 0).
  obs::SpanNode LastSampledTxnTrace() const {
    return txn_manager_->LastSampledTrace();
  }

  /// True when the database refuses writes — either a salvage open or a
  /// WAL device that failed past its retry budget mid-run.
  bool read_only() const { return read_only_; }
  const std::string& read_only_reason() const { return read_only_reason_; }
  storage::Catalog& catalog() { return *catalog_; }
  txn::TxnManager& txn_manager() { return *txn_manager_; }
  alloc::PHeap& heap() { return *heap_; }
  wal::LogManager* log_manager() { return log_manager_.get(); }
  index::IndexSet* indexes(storage::Table* table) const;
  nvm::NvmStats& nvm_stats() { return heap_->region().stats(); }

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)) {}

  static Result<std::unique_ptr<Database>> CreateFresh(
      const DatabaseOptions& options, bool open_existing_log);
  /// NVM image failed verification but a WAL exists: rebuild the image
  /// from checkpoint + log into a scratch file, atomically swap it in,
  /// retire the log, and re-open.
  static Result<std::unique_ptr<Database>> OpenViaLogFallback(
      const DatabaseOptions& options);
  Status AttachAllIndexSets();
  nvm::PmemRegionOptions MakeRegionOptions() const;
  Status EnsureWritable() const;
  /// Refuses maintenance/DDL (`what`) while serving degraded — logged
  /// positions reference the pre-merge layout and deferred indexes are
  /// still pending, so these must wait for the drain to finish.
  Status EnsureNotDegraded(const char* what) const;
  /// Builds every index recorded in the checkpoint whose construction
  /// was deferred by an on-demand open. Runs on the drain thread as the
  /// finalize step (or inline when nothing was pending).
  Status BuildDeferredIndexes();
  /// Flips the database read-only when a WAL write error exhausted the
  /// writer's retry budget (degraded mode).
  void NoteLogFailure(const Status& status);
  /// Applies the observability options once the engine is live: txn
  /// sampling, history sampler, crash handler, and the kOpen recorder
  /// event. Called at the end of Create/Open/CrashAndRecover.
  void StartObservability(bool recovered);

  DatabaseOptions options_;
  RecoveryReport recovery_;
  bool read_only_ = false;
  std::string read_only_reason_;
  std::vector<std::string> quarantined_;
  std::unique_ptr<alloc::PHeap> heap_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<txn::TxnManager> txn_manager_;
  std::unique_ptr<wal::LogManager> log_manager_;
  std::unordered_map<storage::Table*, std::unique_ptr<index::IndexSet>>
      index_sets_;
  /// Indexes from the checkpoint whose builds an on-demand open deferred
  /// to drain completion (placeholder rows can't be keyed).
  std::vector<wal::CheckpointInfo::IndexedColumn> deferred_indexes_;
  /// Non-null only for an on-demand WAL open with pending rows; owns the
  /// drain thread, so destroyed before the structures it restores into.
  std::unique_ptr<recovery::RecoveryDriver> recovery_driver_;
  // Last members on purpose: destroyed first, so the historian and
  // timeline threads are stopped before the heap (and its flight
  // recorder) go away.
  std::unique_ptr<obs::HistorySampler> history_;
  std::unique_ptr<obs::TimelineRecorder> timeline_;
};

}  // namespace hyrise_nv::core

#endif  // HYRISE_NV_CORE_DATABASE_H_
