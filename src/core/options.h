#ifndef HYRISE_NV_CORE_OPTIONS_H_
#define HYRISE_NV_CORE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nvm/latency_model.h"
#include "nvm/pmem_region.h"
#include "recovery/log_recovery.h"
#include "recovery/nvm_recovery.h"
#include "wal/log_manager.h"

namespace hyrise_nv::core {

/// How the engine makes data durable.
enum class DurabilityMode {
  /// No durability (pure in-memory baseline; crashes lose everything).
  kNone,
  /// WAL with full-value insert records + checkpoints (classic baseline).
  kWalValue,
  /// WAL with dictionary-encoded insert records + checkpoints (Hyrise's
  /// optimised logging; smaller log, dictionary replay at recovery).
  kWalDict,
  /// Hyrise-NV: all table/index/MVCC state on NVM; instant restart.
  kNvm,
};

const char* DurabilityModeName(DurabilityMode mode);

/// How thoroughly Open() vets an existing database before serving it.
enum class OpenMode {
  /// Fast path: header-only validation (the paper's instant restart).
  kNormal,
  /// Deep verification of every persistent structure before going live;
  /// any finding fails the open with Status::Corruption.
  kVerifyDeep,
  /// Deep verification, but table-scoped corruption quarantines the
  /// affected tables instead of failing: the rest is served read-only
  /// off the untouched image. Fatal (image-wide) findings still fail.
  kSalvageReadOnly,
};

/// How Open() applies the WAL after the checkpoint load (WAL modes only).
enum class LogRecoveryPolicy {
  /// Replay everything before serving (the paper's baseline: recovery is
  /// linear in data size and the engine is down for the whole replay).
  kEagerReplay,
  /// Serve-during-recovery (MM-DIRECT shape): an analysis pass stages
  /// pending rows as placeholders, the engine opens degraded within
  /// milliseconds, reads restore the keys they touch on demand, and a
  /// background drain replays the remainder before flipping the engine
  /// to fully recovered.
  kServeOnDemand,
};

const char* LogRecoveryPolicyName(LogRecoveryPolicy policy);

/// Engine configuration.
struct DatabaseOptions {
  DurabilityMode mode = DurabilityMode::kNvm;

  /// Verification level for Open() (kNvm mode; ignored elsewhere).
  OpenMode open_mode = OpenMode::kNormal;

  /// Size of the persistent heap (all table data must fit).
  size_t region_size = size_t{256} << 20;

  /// Directory for the NVM image / WAL / checkpoint files. Empty means a
  /// purely in-process setup: the NVM engine uses an anonymous region
  /// with shadow tracking (crash simulation works, process restart does
  /// not), and the WAL engines place their files in a temp directory.
  std::string data_dir;

  /// Injected NVM persist latency (kNvm mode only).
  nvm::NvmLatencyModel nvm_latency;

  /// Crash-fidelity tracking for the NVM region. kShadow enables
  /// SimulateCrash at 2x memory; kNone is cheapest (benchmarks).
  nvm::TrackingMode tracking = nvm::TrackingMode::kShadow;

  /// Simulated SSD performance for WAL + checkpoints.
  wal::BlockDeviceOptions device;

  /// Group commit: sync the log every N commits (WAL modes).
  uint32_t group_commit_every = 1;

  /// WAL recovery policy (ignored by kNvm/kNone).
  LogRecoveryPolicy log_recovery = LogRecoveryPolicy::kEagerReplay;

  /// Serve-on-demand drain tuning: rows restored per write_mutex hold,
  /// and an optional pause between chunks (0 = drain flat out). The
  /// pause bounds writer stalls and lets tests hold the degraded window
  /// open deterministically.
  uint64_t drain_chunk_rows = 4096;
  uint64_t drain_pause_us = 0;

  // --- Observability -------------------------------------------------------

  /// Trace-sample one in every N committed transactions (0 disables).
  /// Sampled commits record per-phase latencies (write-set / persist /
  /// publish) to the txn.trace.* histograms, emit a kTxnTrace flight-
  /// recorder event, and publish a span tree via
  /// Database::LastSampledTxnTrace().
  uint64_t txn_sample_every = 0;

  /// Run the background metrics historian: every history_interval_ms it
  /// captures a counter-delta sample into an in-memory ring of
  /// history_capacity points (exported via Database::HistoryJson()) and
  /// flushes the flight recorder.
  bool enable_history_sampler = false;
  uint64_t history_interval_ms = 1000;
  size_t history_capacity = 300;

  /// Run the timeline recorder (DESIGN.md §15): every
  /// timeline_interval_ms it captures the standard temporal metric set
  /// (commit/fsync/request rates, per-interval latency percentiles,
  /// heap/RSS/NVM-region gauges, recovery backlog) into a ring of
  /// timeline_capacity samples, annotated with maintenance phases
  /// spliced from the flight recorder. Exported via
  /// Database::TimelineJson() and the server stats opcode.
  bool enable_timeline = false;
  uint64_t timeline_interval_ms = 1000;
  size_t timeline_capacity = 600;

  /// Install process-wide fatal-signal handlers (SIGSEGV/SIGBUS/SIGABRT/
  /// SIGILL/SIGFPE) that stamp a kCrashSignal event, flush the flight
  /// recorder with an async-signal-safe msync, and re-raise. Process-wide
  /// and sticky: once installed it stays for the process lifetime.
  bool install_crash_handler = false;

  bool uses_wal() const {
    return mode == DurabilityMode::kWalValue ||
           mode == DurabilityMode::kWalDict;
  }

  std::string NvmImagePath() const { return data_dir + "/nvm.img"; }
  std::string LogPath() const { return data_dir + "/wal.log"; }
  std::string CheckpointPath() const { return data_dir + "/checkpoint.bin"; }

  wal::LogManagerOptions MakeLogOptions() const {
    wal::LogManagerOptions opts;
    opts.format = mode == DurabilityMode::kWalDict
                      ? wal::LogFormat::kDictEncoded
                      : wal::LogFormat::kValue;
    opts.device = device;
    opts.sync_every_n_commits = group_commit_every;
    opts.log_path = LogPath();
    opts.checkpoint_path = CheckpointPath();
    return opts;
  }
};

/// What recovery did when the database was opened (one branch is filled,
/// by mode).
struct RecoveryReport {
  DurabilityMode mode = DurabilityMode::kNone;
  bool recovered = false;  // false = fresh database
  double total_seconds = 0;
  recovery::LogRecoveryReport log;
  recovery::NvmRecoveryReport nvm;
  /// kNvm only: the NVM image failed verification but a WAL existed, so
  /// the state was rebuilt from checkpoint + log instead.
  bool fell_back_to_log = false;
  /// The database opened read-only (salvage mode). Writes fail.
  bool read_only = false;
  /// Tables quarantined by a salvage open; GetTable on them fails.
  std::vector<std::string> quarantined_tables;
  /// Full span tree of the open ("open" root; instant_restart or
  /// log_recovery subtree grafted in, plus attach_index_sets). Empty for
  /// a fresh Create. `total_seconds` equals `trace.seconds` when set.
  obs::SpanNode trace;

  /// Human-readable summary: mode/flags header + indented span tree.
  std::string RenderText() const;
  /// JSON object with mode, flags, phase seconds, and the span tree.
  std::string ToJson() const;
};

}  // namespace hyrise_nv::core

#endif  // HYRISE_NV_CORE_OPTIONS_H_
