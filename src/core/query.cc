#include "core/query.h"

#include "storage/mvcc.h"

namespace hyrise_nv::core {

using storage::Cid;
using storage::IsVisible;
using storage::RowLocation;
using storage::Table;
using storage::Tid;
using storage::Value;
using storage::ValueId;

int CompareValues(const Value& a, const Value& b) {
  HYRISE_NV_CHECK(a.index() == b.index(), "comparing mixed value types");
  if (const auto* ia = std::get_if<int64_t>(&a)) {
    const int64_t ib = std::get<int64_t>(b);
    return *ia < ib ? -1 : (*ia > ib ? 1 : 0);
  }
  if (const auto* da = std::get_if<double>(&a)) {
    const double db = std::get<double>(b);
    return *da < db ? -1 : (*da > db ? 1 : 0);
  }
  return std::get<std::string>(a).compare(std::get<std::string>(b));
}

Result<std::vector<RowLocation>> ScanRange(Table* table, size_t column,
                                           const Value& lo, const Value& hi,
                                           Cid snapshot, Tid tid,
                                           const index::IndexSet* indexes) {
  if (column >= table->schema().num_columns()) {
    return Status::InvalidArgument("column out of range");
  }
  if (CompareValues(lo, hi) > 0) {
    return std::vector<RowLocation>{};
  }
  std::vector<RowLocation> rows;

  // Ordered index available: group-key id-range on main + skip-list walk
  // on delta, visibility-filtered.
  if (indexes != nullptr && indexes->HasOrderedIndex(column)) {
    HYRISE_NV_RETURN_NOT_OK(indexes->ForEachRangeCandidate(
        column, lo, hi, [&](RowLocation loc) {
          if (IsVisible(*table->mvcc(loc), snapshot, tid)) {
            rows.push_back(loc);
          }
        }));
    return rows;
  }

  // Main: the sorted dictionary turns the value range into an id range.
  const auto& main_col = table->main().column(column);
  const ValueId lo_id = main_col.dictionary().LowerBound(lo);
  const ValueId hi_id = main_col.dictionary().UpperBound(hi);
  if (lo_id < hi_id) {
    const uint64_t main_rows = table->main_row_count();
    for (uint64_t r = 0; r < main_rows; ++r) {
      const ValueId id = main_col.AttrAt(r);
      if (id >= lo_id && id < hi_id &&
          IsVisible(*table->main().mvcc(r), snapshot, tid)) {
        rows.push_back({true, r});
      }
    }
  }

  // Delta: pre-compute the match mask per dictionary id.
  const auto& delta_col = table->delta().column(column);
  const uint64_t dict_size = delta_col.dictionary().size();
  std::vector<bool> matches(dict_size);
  for (uint64_t id = 0; id < dict_size; ++id) {
    const Value v = delta_col.dictionary().GetValue(static_cast<ValueId>(id));
    matches[id] = CompareValues(v, lo) >= 0 && CompareValues(v, hi) <= 0;
  }
  const uint64_t delta_rows = table->delta_row_count();
  for (uint64_t r = 0; r < delta_rows; ++r) {
    // Rows staged by on-demand recovery carry kInvalidValueId until
    // restored; the bound check keeps them out of the mask (and the mask
    // lookup in bounds). Degraded scans restore every in-range row before
    // reaching here, so skipping the sentinel never drops a match.
    const ValueId id = delta_col.AttrAt(r);
    if (id < dict_size && matches[id] &&
        IsVisible(*table->delta().mvcc(r), snapshot, tid)) {
      rows.push_back({false, r});
    }
  }
  return rows;
}

uint64_t CountRows(Table* table, Cid snapshot, Tid tid) {
  return table->CountVisible(snapshot, tid);
}

namespace {

template <typename T>
Result<T> SumColumn(Table* table, size_t column, Cid snapshot, Tid tid) {
  if (column >= table->schema().num_columns()) {
    return Status::InvalidArgument("column out of range");
  }
  // Decode each distinct dictionary value once.
  const auto& main_col = table->main().column(column);
  std::vector<T> main_values(main_col.dictionary().size());
  for (uint64_t id = 0; id < main_values.size(); ++id) {
    main_values[id] = std::get<T>(
        main_col.dictionary().GetValue(static_cast<ValueId>(id)));
  }
  const auto& delta_col = table->delta().column(column);
  std::vector<T> delta_values(delta_col.dictionary().size());
  for (uint64_t id = 0; id < delta_values.size(); ++id) {
    delta_values[id] = std::get<T>(
        delta_col.dictionary().GetValue(static_cast<ValueId>(id)));
  }

  T sum{};
  const uint64_t main_rows = table->main_row_count();
  for (uint64_t r = 0; r < main_rows; ++r) {
    if (IsVisible(*table->main().mvcc(r), snapshot, tid)) {
      sum += main_values[main_col.AttrAt(r)];
    }
  }
  const uint64_t delta_rows = table->delta_row_count();
  for (uint64_t r = 0; r < delta_rows; ++r) {
    if (IsVisible(*table->delta().mvcc(r), snapshot, tid)) {
      sum += delta_values[delta_col.AttrAt(r)];
    }
  }
  return sum;
}

}  // namespace

Result<int64_t> SumInt64(Table* table, size_t column, Cid snapshot,
                         Tid tid) {
  if (table->schema().column(column).type != storage::DataType::kInt64) {
    return Status::InvalidArgument("SumInt64 on non-int64 column");
  }
  return SumColumn<int64_t>(table, column, snapshot, tid);
}

Result<double> SumDouble(Table* table, size_t column, Cid snapshot,
                         Tid tid) {
  if (table->schema().column(column).type != storage::DataType::kDouble) {
    return Status::InvalidArgument("SumDouble on non-double column");
  }
  return SumColumn<double>(table, column, snapshot, tid);
}

std::vector<std::vector<Value>> MaterializeRows(
    Table* table, const std::vector<RowLocation>& locs) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(locs.size());
  for (const RowLocation loc : locs) {
    rows.push_back(table->GetRow(loc));
  }
  return rows;
}

}  // namespace hyrise_nv::core
