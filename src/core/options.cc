#include "core/options.h"

namespace hyrise_nv::core {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone:
      return "none";
    case DurabilityMode::kWalValue:
      return "wal-value";
    case DurabilityMode::kWalDict:
      return "wal-dict";
    case DurabilityMode::kNvm:
      return "nvm";
  }
  return "unknown";
}

}  // namespace hyrise_nv::core
