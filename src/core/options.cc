#include "core/options.h"

#include <cstdio>
#include <sstream>

namespace hyrise_nv::core {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone:
      return "none";
    case DurabilityMode::kWalValue:
      return "wal-value";
    case DurabilityMode::kWalDict:
      return "wal-dict";
    case DurabilityMode::kNvm:
      return "nvm";
  }
  return "unknown";
}

const char* LogRecoveryPolicyName(LogRecoveryPolicy policy) {
  switch (policy) {
    case LogRecoveryPolicy::kEagerReplay:
      return "eager";
    case LogRecoveryPolicy::kServeOnDemand:
      return "on-demand";
  }
  return "unknown";
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string RecoveryReport::RenderText() const {
  std::ostringstream out;
  out << "recovery: mode=" << DurabilityModeName(mode)
      << " recovered=" << (recovered ? "yes" : "no (fresh)");
  if (fell_back_to_log) out << " fell_back_to_log";
  if (read_only) out << " read_only";
  if (log.checkpoint_fallback) out << " checkpoint_fallback";
  if (log.on_demand) {
    out << " on_demand(deferred_rows=" << log.deferred_rows << ")";
  }
  char total[64];
  std::snprintf(total, sizeof(total), " total=%.3f ms",
                total_seconds * 1e3);
  out << total << "\n";
  for (const auto& table : quarantined_tables) {
    out << "  quarantined: " << table << "\n";
  }
  if (!trace.empty()) out << trace.Render();
  return out.str();
}

std::string RecoveryReport::ToJson() const {
  std::ostringstream out;
  out << "{\"mode\":" << JsonQuote(DurabilityModeName(mode))
      << ",\"recovered\":" << (recovered ? "true" : "false")
      << ",\"fell_back_to_log\":" << (fell_back_to_log ? "true" : "false")
      << ",\"read_only\":" << (read_only ? "true" : "false")
      << ",\"total_seconds\":" << total_seconds;
  out << ",\"quarantined_tables\":[";
  for (size_t i = 0; i < quarantined_tables.size(); ++i) {
    if (i > 0) out << ',';
    out << JsonQuote(quarantined_tables[i]);
  }
  out << ']';
  if (mode == DurabilityMode::kNvm && !fell_back_to_log) {
    out << ",\"phases\":{\"map_seconds\":" << nvm.map_seconds
        << ",\"verify_seconds\":" << nvm.verify_seconds
        << ",\"fixup_seconds\":" << nvm.fixup_seconds
        << ",\"attach_seconds\":" << nvm.attach_seconds << '}';
  } else if (recovered || fell_back_to_log) {
    out << ",\"phases\":{\"checkpoint_load_seconds\":"
        << log.checkpoint_load_seconds;
    if (log.on_demand) {
      out << ",\"analysis_seconds\":" << log.analysis_seconds
          << ",\"deferred_rows\":" << log.deferred_rows;
    } else {
      out << ",\"replay_seconds\":" << log.replay_seconds
          << ",\"index_rebuild_seconds\":" << log.index_rebuild_seconds;
    }
    out << ",\"replayed_records\":" << log.replayed_records
        << ",\"committed_txns\":" << log.committed_txns
        << ",\"checkpoint_fallback\":"
        << (log.checkpoint_fallback ? "true" : "false")
        << ",\"on_demand\":" << (log.on_demand ? "true" : "false") << '}';
  }
  if (!trace.empty()) out << ",\"trace\":" << trace.ToJson();
  out << '}';
  return out.str();
}

}  // namespace hyrise_nv::core
