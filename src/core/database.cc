#include "core/database.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <thread>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/logging.h"
#include "core/query.h"
#include "nvm/nvm_env.h"
#include "obs/blackbox.h"
#include "obs/crash_handler.h"
#include "obs/trace.h"
#include "recovery/log_index.h"
#include "recovery/log_recovery.h"
#include "recovery/verify.h"
#include "storage/mvcc.h"

namespace hyrise_nv::core {

namespace {

void NoteOpened() {
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& open_count =
      obs::MetricsRegistry::Instance().GetCounter("db.open.count");
  open_count.Inc();
#endif
}

// Adopts every in-doubt 2PC transaction a log replay surfaced: builds a
// kPrepared context carrying the rebuilt write set and seals a prepared
// commit slot for it (no OnPrepare hook — the log already holds the
// prepare record), so the transaction survives further restarts and its
// row claims stay protected from claim-stealing until a decision lands.
Status AdoptInDoubt(const recovery::LogRecoveryReport& report,
                    storage::Catalog& catalog,
                    txn::TxnManager& txn_manager) {
  for (const auto& in_doubt : report.in_doubt) {
    auto ctx = std::make_shared<txn::TxnContext>();
    ctx->tid = in_doubt.tid;
    ctx->gtid = in_doubt.gtid;
    ctx->state = txn::TxnState::kPrepared;
    ctx->writes.reserve(in_doubt.writes.size());
    for (const auto& write : in_doubt.writes) {
      auto table = catalog.GetTableById(write.table_id);
      if (!table.ok()) return table.status();
      ctx->writes.push_back(txn::Write{*table, write.loc, write.invalidate});
    }
    HYRISE_NV_LOG(kInfo) << "adopting in-doubt transaction gtid="
                         << in_doubt.gtid << " tid=" << in_doubt.tid
                         << " (" << in_doubt.writes.size()
                         << " writes) from the log";
    HYRISE_NV_RETURN_NOT_OK(txn_manager.SealAdoptedPrepared(std::move(ctx)));
  }
  return Status::OK();
}

}  // namespace

nvm::PmemRegionOptions Database::MakeRegionOptions() const {
  nvm::PmemRegionOptions region_options;
  if (options_.mode == DurabilityMode::kNvm) {
    region_options.latency = options_.nvm_latency;
    region_options.tracking = options_.tracking;
    if (!options_.data_dir.empty()) {
      region_options.file_path = options_.NvmImagePath();
    }
  } else {
    // WAL / no-durability engines keep table structures in DRAM: an
    // anonymous region with zero persist latency and no shadow. The
    // persist calls still execute (same code path) but cost only the
    // accounting, which models DRAM honestly.
    region_options.latency = nvm::NvmLatencyModel::DramSpeed();
    region_options.tracking = nvm::TrackingMode::kNone;
  }
  return region_options;
}

Result<std::unique_ptr<Database>> Database::CreateFresh(
    const DatabaseOptions& options, bool open_existing_log) {
  auto db = std::unique_ptr<Database>(new Database(options));
  auto heap_result =
      alloc::PHeap::Create(options.region_size, db->MakeRegionOptions());
  if (!heap_result.ok()) return heap_result.status();
  db->heap_ = std::move(heap_result).ValueUnsafe();

  auto catalog_result = storage::Catalog::Format(*db->heap_);
  if (!catalog_result.ok()) return catalog_result.status();
  db->catalog_ = std::move(catalog_result).ValueUnsafe();

  auto txn_result = txn::TxnManager::Format(*db->heap_);
  if (!txn_result.ok()) return txn_result.status();
  db->txn_manager_ = std::move(txn_result).ValueUnsafe();

  if (options.uses_wal()) {
    auto log_result =
        open_existing_log
            ? wal::LogManager::OpenExisting(options.MakeLogOptions())
            : wal::LogManager::Create(options.MakeLogOptions());
    if (!log_result.ok()) return log_result.status();
    db->log_manager_ = std::move(log_result).ValueUnsafe();
    db->txn_manager_->set_commit_hook(db->log_manager_.get());
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::Create(
    const DatabaseOptions& options) {
  if (options.uses_wal() && options.data_dir.empty()) {
    return Status::InvalidArgument("WAL modes need a data_dir");
  }
  auto db_result = CreateFresh(options, /*open_existing_log=*/false);
  if (!db_result.ok()) return db_result;
  (*db_result)->recovery_.mode = options.mode;
  (*db_result)->recovery_.recovered = false;
  (*db_result)->StartObservability(/*recovered=*/false);
  return db_result;
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  obs::SpanTracer tracer("open");
  if (options.mode == DurabilityMode::kNvm) {
    if (options.data_dir.empty()) {
      return Status::InvalidArgument(
          "opening an NVM database needs a data_dir");
    }
    auto db = std::unique_ptr<Database>(new Database(options));
    recovery::NvmRestartOptions restart_options;
    restart_options.region = db->MakeRegionOptions();
    restart_options.level = options.open_mode == OpenMode::kNormal
                                ? recovery::ValidationLevel::kFastHeaderOnly
                                : recovery::ValidationLevel::kDeep;
    restart_options.salvage =
        options.open_mode == OpenMode::kSalvageReadOnly;
    auto restart_result = recovery::InstantRestart(restart_options);
    if (!restart_result.ok()) {
      // A corrupt image is still recoverable when a WAL covering the
      // same data sits next to it: rebuild rather than fail.
      if (restart_result.status().IsCorruption() &&
          nvm::FileExists(options.LogPath())) {
        HYRISE_NV_LOG(kWarn)
            << "NVM image is corrupt ("
            << restart_result.status().ToString()
            << "); falling back to log-based recovery";
        return OpenViaLogFallback(options);
      }
      return restart_result.status();
    }
    db->heap_ = std::move(restart_result->heap);
    db->catalog_ = std::move(restart_result->catalog);
    db->txn_manager_ = std::move(restart_result->txn_manager);
    db->recovery_.mode = options.mode;
    db->recovery_.recovered = true;
    db->recovery_.nvm = restart_result->report;
    tracer.Attach(db->recovery_.nvm.trace);
    if (restart_result->salvage_read_only) {
      db->read_only_ = true;
      db->read_only_reason_ =
          "opened in salvage mode; deep verification found corruption";
      db->quarantined_ = restart_result->quarantined_tables;
      db->recovery_.read_only = true;
      db->recovery_.quarantined_tables = db->quarantined_;
    }
    tracer.Begin("attach_index_sets");
    HYRISE_NV_RETURN_NOT_OK(db->AttachAllIndexSets());
    tracer.End();
    if (!db->read_only_) {
      // Re-adopt prepared-but-undecided 2PC transactions straight from
      // their kPrepared commit slots (instant restart keeps them sealed).
      HYRISE_NV_RETURN_NOT_OK(
          db->txn_manager_->AdoptPreparedFromTable(*db->catalog_));
    }
    db->recovery_.trace = tracer.Finish();
    db->recovery_.total_seconds = db->recovery_.trace.seconds;
    NoteOpened();
    db->StartObservability(/*recovered=*/true);
    return db;
  }

  if (options.uses_wal()) {
    auto db_result = CreateFresh(options, /*open_existing_log=*/true);
    if (!db_result.ok()) return db_result;
    auto& db = *db_result;

    bool serve_on_demand =
        options.log_recovery == LogRecoveryPolicy::kServeOnDemand;
    if (serve_on_demand) {
      // In-doubt 2PC transactions need the eager replay machinery (row
      // claims + write-set reconstruction, DESIGN.md §16); the on-demand
      // analysis pass cannot stage them. Rare by construction — prepares
      // exist only in the window between prepare and decide — so the
      // fallback costs nothing in the common case.
      auto in_doubt_result =
          recovery::LogHasInDoubt(options.MakeLogOptions());
      if (!in_doubt_result.ok()) return in_doubt_result.status();
      if (*in_doubt_result) {
        HYRISE_NV_LOG(kWarn)
            << "log holds in-doubt 2PC transactions; falling back from "
               "serve-on-demand to eager replay";
        serve_on_demand = false;
      }
    }
    if (serve_on_demand) {
      // Serve-during-recovery: analysis stages pending rows instead of
      // replaying them, the engine opens degraded in O(log-scan) time,
      // and a background drain restores the rest while serving.
      auto index_result = recovery::AnalyzeLog(
          *db->heap_, *db->catalog_, *db->txn_manager_,
          options.MakeLogOptions());
      if (!index_result.ok()) return index_result.status();
      db->log_manager_->ResetDictWatermarks(*db->catalog_);
      db->recovery_.mode = options.mode;
      db->recovery_.recovered = true;
      db->recovery_.log = index_result->report;
      tracer.Attach(db->recovery_.log.trace);
      tracer.Begin("attach_index_sets");
      HYRISE_NV_RETURN_NOT_OK(db->AttachAllIndexSets());
      tracer.End();
      db->deferred_indexes_ = std::move(index_result->indexed_columns);
      if (index_result->total_pending_rows == 0) {
        // Nothing to drain: build the indexes inline and open ready.
        HYRISE_NV_RETURN_NOT_OK(db->BuildDeferredIndexes());
      } else {
        recovery::RecoveryDriverOptions driver_options;
        driver_options.drain_chunk_rows = options.drain_chunk_rows;
        driver_options.drain_pause_us = options.drain_pause_us;
        db->recovery_driver_ = std::make_unique<recovery::RecoveryDriver>(
            *db->heap_, std::move(*index_result), driver_options);
      }
      db->recovery_.trace = tracer.Finish();
      db->recovery_.total_seconds = db->recovery_.trace.seconds;
      NoteOpened();
      db->StartObservability(/*recovered=*/true);
      if (db->recovery_driver_ != nullptr) {
        Database* raw = db.get();
        db->recovery_driver_->StartDrain(
            [raw] { return raw->BuildDeferredIndexes(); });
      }
      return db_result;
    }

    auto report_result = recovery::RecoverFromLog(
        *db->heap_, *db->catalog_, *db->txn_manager_,
        options.MakeLogOptions());
    if (!report_result.ok()) return report_result.status();
    db->log_manager_->ResetDictWatermarks(*db->catalog_);
    db->recovery_.mode = options.mode;
    db->recovery_.recovered = true;
    db->recovery_.log = *report_result;
    tracer.Attach(db->recovery_.log.trace);
    tracer.Begin("attach_index_sets");
    HYRISE_NV_RETURN_NOT_OK(db->AttachAllIndexSets());
    tracer.End();
    HYRISE_NV_RETURN_NOT_OK(AdoptInDoubt(
        db->recovery_.log, *db->catalog_, *db->txn_manager_));
    db->recovery_.trace = tracer.Finish();
    db->recovery_.total_seconds = db->recovery_.trace.seconds;
    NoteOpened();
    db->StartObservability(/*recovered=*/true);
    return db_result;
  }

  return Status::InvalidArgument("mode has nothing to open");
}

Result<std::unique_ptr<Database>> Database::OpenViaLogFallback(
    const DatabaseOptions& options) {
  // Rebuild into a scratch file; the corrupt image stays untouched until
  // the rebuilt one is complete and clean. The rename is the commit
  // point — a crash mid-rebuild leaves the old image (and the log) as
  // they were, so the fallback simply runs again.
  const std::string rebuild_path = options.NvmImagePath() + ".rebuild";
  nvm::RemoveFileIfExists(rebuild_path);
  obs::SpanTracer tracer("open");
  recovery::LogRecoveryReport log_report;
  tracer.Begin("rebuild_image");
  {
    nvm::PmemRegionOptions region_options;
    region_options.latency = options.nvm_latency;
    region_options.tracking = nvm::TrackingMode::kNone;
    region_options.file_path = rebuild_path;
    auto heap_result =
        alloc::PHeap::Create(options.region_size, region_options);
    if (!heap_result.ok()) return heap_result.status();
    auto heap = std::move(heap_result).ValueUnsafe();
    auto catalog_result = storage::Catalog::Format(*heap);
    if (!catalog_result.ok()) return catalog_result.status();
    auto txn_result = txn::TxnManager::Format(*heap);
    if (!txn_result.ok()) return txn_result.status();
    auto report_result = recovery::RecoverFromLog(
        *heap, **catalog_result, **txn_result, options.MakeLogOptions());
    if (!report_result.ok()) return report_result.status();
    log_report = *report_result;
    tracer.Attach(log_report.trace);
    // Seal prepared slots for in-doubt 2PC transactions into the rebuilt
    // image: the log is retired below, so the image alone must carry the
    // prepared state for the re-open to adopt.
    HYRISE_NV_RETURN_NOT_OK(
        AdoptInDoubt(log_report, **catalog_result, **txn_result));
    recovery::SealForCleanShutdown(*heap);
    HYRISE_NV_RETURN_NOT_OK(heap->CloseClean());
  }
  tracer.End();
  tracer.Begin("install_image");
  std::error_code ec;
  std::filesystem::rename(rebuild_path, options.NvmImagePath(), ec);
  if (ec) {
    return Status::IOError("installing rebuilt NVM image: " + ec.message());
  }
  // Retire the log + checkpoint: their history now lives in the image,
  // and replaying it again on top of newer state would corrupt data.
  // (Also breaks the fallback recursion: no log file, no second try.)
  std::filesystem::rename(options.LogPath(),
                          options.LogPath() + ".applied", ec);
  if (ec) {
    return Status::IOError("retiring applied log: " + ec.message());
  }
  if (nvm::FileExists(options.CheckpointPath())) {
    std::filesystem::rename(options.CheckpointPath(),
                            options.CheckpointPath() + ".applied", ec);
    if (ec) {
      return Status::IOError("retiring applied checkpoint: " + ec.message());
    }
  }
  tracer.End();
  auto db_result = Open(options);
  if (!db_result.ok()) return db_result;
  // The re-open produced its own "open" trace; graft it in as "reopen"
  // under the fallback's trace so the final tree covers everything.
  obs::SpanNode reopen = std::move((*db_result)->recovery_.trace);
  reopen.name = "reopen";
  tracer.Attach(std::move(reopen));
  (*db_result)->recovery_.fell_back_to_log = true;
  (*db_result)->recovery_.log = log_report;
  (*db_result)->recovery_.trace = tracer.Finish();
  (*db_result)->recovery_.total_seconds =
      (*db_result)->recovery_.trace.seconds;
  return db_result;
}

Result<recovery::VerifyReport> Database::VerifyImage(
    const DatabaseOptions& options) {
  nvm::PmemRegionOptions region_options;
  region_options.tracking = nvm::TrackingMode::kNone;
  region_options.file_path = options.NvmImagePath();
  auto region_result = nvm::PmemRegion::Open(region_options);
  if (!region_result.ok()) return region_result.status();
  return recovery::DeepVerify(**region_result);
}

Result<std::unique_ptr<Database>> Database::CrashAndRecover(
    std::unique_ptr<Database> db) {
  const DatabaseOptions options = db->options_;
  // Stop the historian and timeline before the simulated power failure:
  // their threads flush/decode the flight recorder via the process-wide
  // Current() pointer, which re-attaching the heap below is about to
  // swap out.
  db->timeline_.reset();
  db->history_.reset();

  if (options.mode == DurabilityMode::kNvm) {
    HYRISE_NV_RETURN_NOT_OK(db->heap_->region().SimulateCrash());
    // The timer starts after the simulated power failure: restoring the
    // shadow image is the *crash*, not the recovery.
    obs::SpanTracer tracer("open");
    auto recovered = std::unique_ptr<Database>(new Database(options));
    auto restart_result =
        recovery::InstantRestartFromHeap(std::move(db->heap_));
    if (!restart_result.ok()) return restart_result.status();
    db.reset();
    recovered->heap_ = std::move(restart_result->heap);
    recovered->catalog_ = std::move(restart_result->catalog);
    recovered->txn_manager_ = std::move(restart_result->txn_manager);
    recovered->recovery_.mode = options.mode;
    recovered->recovery_.recovered = true;
    recovered->recovery_.nvm = restart_result->report;
    tracer.Attach(recovered->recovery_.nvm.trace);
    tracer.Begin("attach_index_sets");
    HYRISE_NV_RETURN_NOT_OK(recovered->AttachAllIndexSets());
    tracer.End();
    HYRISE_NV_RETURN_NOT_OK(
        recovered->txn_manager_->AdoptPreparedFromTable(
            *recovered->catalog_));
    recovered->recovery_.trace = tracer.Finish();
    recovered->recovery_.total_seconds = recovered->recovery_.trace.seconds;
    NoteOpened();
    recovered->StartObservability(/*recovered=*/true);
    return recovered;
  }

  if (options.uses_wal()) {
    // Power failure: the unsynced log tail is gone, DRAM is gone.
    HYRISE_NV_RETURN_NOT_OK(db->log_manager_->device().SimulateCrash());
    db.reset();
    return Open(options);
  }

  return Status::NotSupported("kNone mode loses everything in a crash");
}

Status Database::AttachAllIndexSets() {
  index_sets_.clear();
  for (const auto& table : catalog_->tables()) {
    auto set = std::make_unique<index::IndexSet>(table.get());
    HYRISE_NV_RETURN_NOT_OK(set->Attach());
    index_sets_[table.get()] = std::move(set);
  }
  return Status::OK();
}

index::IndexSet* Database::indexes(storage::Table* table) const {
  auto it = index_sets_.find(table);
  return it == index_sets_.end() ? nullptr : it->second.get();
}

Status Database::EnsureWritable() const {
  if (!read_only_) return Status::OK();
  return Status::IOError("database is read-only: " + read_only_reason_);
}

Status Database::EnsureNotDegraded(const char* what) const {
  if (recovery_driver_ == nullptr || !recovery_driver_->serving_degraded()) {
    return Status::OK();
  }
  return Status::Aborted(std::string(what) +
                         " unavailable while serving degraded: recovery "
                         "drain in progress");
}

Status Database::BuildDeferredIndexes() {
  for (const auto& indexed : deferred_indexes_) {
    auto table_result = catalog_->GetTable(indexed.table);
    if (!table_result.ok()) return table_result.status();
    storage::Table* table = *table_result;
    index::IndexSet* set = indexes(table);
    HYRISE_NV_CHECK(set != nullptr, "table without index set");
    // Same lock as Insert: writers admitted during degraded serving must
    // not observe a half-built index, and rows they append either land
    // before the build (the build sees them) or after (OnInsert sees the
    // bound index).
    std::lock_guard<std::mutex> write_guard(table->write_mutex());
    if (set->HasIndex(indexed.column)) continue;
    HYRISE_NV_RETURN_NOT_OK(set->CreateIndexOfKind(
        indexed.column, static_cast<storage::PIndexKind>(indexed.kind)));
    if (table->main_row_count() > 0) {
      HYRISE_NV_RETURN_NOT_OK(
          storage::BuildMainGroupKey(*table, indexed.column));
      HYRISE_NV_RETURN_NOT_OK(set->Attach());
    }
  }
  deferred_indexes_.clear();
  return Status::OK();
}

Status Database::WaitUntilRecovered(uint64_t timeout_ms) {
  if (recovery_driver_ == nullptr) return Status::OK();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (recovery_driver_->serving_degraded()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Aborted("timed out waiting for the recovery drain");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

void Database::NoteLogFailure(const Status& status) {
  if (status.ok() || status.code() != StatusCode::kIOError) return;
  if (log_manager_ == nullptr || !log_manager_->writer().degraded()) return;
  if (read_only_) return;
  read_only_ = true;
  read_only_reason_ =
      "WAL device failed past its retry budget: " + status.message();
  HYRISE_NV_LOG(kError) << "database is now read-only: "
                        << read_only_reason_;
}

Result<storage::Table*> Database::GetTable(const std::string& name) const {
  for (const auto& quarantined : quarantined_) {
    if (quarantined == name) {
      return Status::Corruption("table '" + name +
                                "' is quarantined: it failed deep "
                                "verification at open");
    }
  }
  return catalog_->GetTable(name);
}

Status Database::Commit(txn::Transaction& tx) {
  Status status = txn_manager_->Commit(tx);
  NoteLogFailure(status);
  return status;
}

Status Database::Prepare(txn::Transaction& tx, uint64_t gtid) {
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  Status status = txn_manager_->Prepare(tx, gtid);
  NoteLogFailure(status);
  return status;
}

Status Database::Decide(uint64_t gtid, bool commit) {
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  Status status = txn_manager_->Decide(gtid, commit);
  NoteLogFailure(status);
  return status;
}

Result<storage::Table*> Database::CreateTable(const std::string& name,
                                              const storage::Schema& schema) {
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  auto table_result = catalog_->CreateTable(name, schema);
  if (!table_result.ok()) return table_result;
  auto set = std::make_unique<index::IndexSet>(*table_result);
  HYRISE_NV_RETURN_NOT_OK(set->Attach());
  index_sets_[*table_result] = std::move(set);
  if (log_manager_ != nullptr) {
    Status log_status = log_manager_->LogCreateTable(**table_result);
    if (!log_status.ok()) {
      NoteLogFailure(log_status);
      return log_status;
    }
  }
  return table_result;
}

Status Database::CreateIndex(const std::string& table_name, size_t column,
                             storage::PIndexKind kind) {
  // Index builds key every existing row; placeholders can't be keyed,
  // and the build would race the drain's deferred builds.
  HYRISE_NV_RETURN_NOT_OK(EnsureNotDegraded("create-index"));
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  auto table_result = catalog_->GetTable(table_name);
  if (!table_result.ok()) return table_result.status();
  index::IndexSet* set = indexes(*table_result);
  HYRISE_NV_CHECK(set != nullptr, "table without index set");
  HYRISE_NV_RETURN_NOT_OK(set->CreateIndexOfKind(column, kind));
  // Build the main side too if a main partition already exists.
  if ((*table_result)->main_row_count() > 0) {
    HYRISE_NV_RETURN_NOT_OK(
        storage::BuildMainGroupKey(**table_result, column));
    HYRISE_NV_RETURN_NOT_OK(set->Attach());
  }
  if (log_manager_ != nullptr) {
    Status log_status = log_manager_->LogCreateIndex(
        (*table_result)->id(), static_cast<uint32_t>(column),
        static_cast<uint32_t>(kind));
    if (!log_status.ok()) {
      NoteLogFailure(log_status);
      return log_status;
    }
  }
  return Status::OK();
}

Result<storage::RowLocation> Database::Insert(
    txn::Transaction& tx, storage::Table* table,
    const std::vector<storage::Value>& row) {
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  if (!tx.active()) {
    return Status::InvalidArgument("transaction not active");
  }
  // One writer per table at a time: the delta append, index insert, and
  // dict-encoded WAL logging all touch single-writer structures. Writers
  // on different tables proceed in parallel.
  std::lock_guard<std::mutex> write_guard(table->write_mutex());
  auto loc_result = table->AppendRow(row, tx.tid());
  if (!loc_result.ok()) return loc_result;
  tx.RecordInsert(table, *loc_result);
  index::IndexSet* set = indexes(table);
  if (set != nullptr) {
    HYRISE_NV_RETURN_NOT_OK(set->OnInsert(row, loc_result->row));
  }
  if (log_manager_ != nullptr) {
    Status log_status =
        log_manager_->LogInsert(*table, tx.tid(), row, *loc_result);
    if (!log_status.ok()) {
      NoteLogFailure(log_status);
      return log_status;
    }
  }
  return loc_result;
}

Status Database::Delete(txn::Transaction& tx, storage::Table* table,
                        storage::RowLocation loc) {
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  if (!tx.active()) {
    return Status::InvalidArgument("transaction not active");
  }
  storage::MvccEntry* entry = table->mvcc(loc);
  if (!storage::IsVisible(*entry, tx.snapshot(), tx.tid())) {
    return Status::NotFound("row not visible to this transaction");
  }
  auto active = [this](storage::Tid t) { return txn_manager_->IsActive(t); };
  HYRISE_NV_RETURN_NOT_OK(storage::ClaimForInvalidate(
      heap_->region(), entry, tx.tid(), active));
  if (entry->begin == storage::kCidInfinity) {
    // Deleting our own uncommitted insert.
    storage::MarkSelfDeleted(heap_->region(), entry);
  }
  tx.RecordInvalidate(table, loc);
  if (log_manager_ != nullptr) {
    Status log_status = log_manager_->LogDelete(*table, tx.tid(), loc);
    if (!log_status.ok()) {
      NoteLogFailure(log_status);
      return log_status;
    }
  }
  return Status::OK();
}

Result<storage::RowLocation> Database::Update(
    txn::Transaction& tx, storage::Table* table, storage::RowLocation loc,
    const std::vector<storage::Value>& row) {
  HYRISE_NV_RETURN_NOT_OK(Delete(tx, table, loc));
  return Insert(tx, table, row);
}

Status Database::InsertAutoCommit(storage::Table* table,
                                  const std::vector<storage::Value>& row) {
  auto tx_result = Begin();
  if (!tx_result.ok()) return tx_result.status();
  auto insert_result = Insert(*tx_result, table, row);
  if (!insert_result.ok()) {
    (void)Abort(*tx_result);
    return insert_result.status();
  }
  return Commit(*tx_result);
}

Result<std::vector<storage::RowLocation>> Database::ScanEqual(
    storage::Table* table, size_t column, const storage::Value& value,
    storage::Cid snapshot, storage::Tid tid) const {
  const bool degraded =
      recovery_driver_ != nullptr && recovery_driver_->serving_degraded();
  std::unique_lock<std::mutex> degraded_guard;
  if (degraded) {
    // Restore the rows this key touches first. The scan then runs
    // index-free: no index exists while degraded (all builds are
    // deferred to the drain), and consulting the set here would race the
    // finalize-time build. Holding the write mutex for the scan itself
    // serializes the full-delta cell walk with the drain's chunked
    // restores (the drain takes the same mutex per chunk, so degraded
    // reads pause it briefly instead of racing it).
    HYRISE_NV_RETURN_NOT_OK(
        recovery_driver_->PrepareScanEqual(table, column, value));
    degraded_guard = std::unique_lock<std::mutex>(table->write_mutex());
  }
  std::vector<storage::RowLocation> rows;
  index::IndexSet* set = degraded ? nullptr : indexes(table);
  if (set != nullptr && set->HasIndex(column)) {
    HYRISE_NV_RETURN_NOT_OK(set->ForEachEqualCandidate(
        column, value, [&](storage::RowLocation loc) {
          if (storage::IsVisible(*table->mvcc(loc), snapshot, tid)) {
            rows.push_back(loc);
          }
        }));
    return rows;
  }

  // Index-free scan: resolve the value to per-partition ids once, then
  // compare encoded ids only.
  const auto& main_col = table->main().column(column);
  const storage::ValueId main_id = main_col.dictionary().Find(value);
  if (main_id != storage::kInvalidValueId) {
    const uint64_t main_rows = table->main_row_count();
    for (uint64_t r = 0; r < main_rows; ++r) {
      if (main_col.AttrAt(r) == main_id &&
          storage::IsVisible(*table->main().mvcc(r), snapshot, tid)) {
        rows.push_back({true, r});
      }
    }
  }
  const auto& delta_col = table->delta().column(column);
  const storage::ValueId delta_id = delta_col.dictionary().Lookup(value);
  if (delta_id != storage::kInvalidValueId) {
    const uint64_t delta_rows = table->delta_row_count();
    for (uint64_t r = 0; r < delta_rows; ++r) {
      if (delta_col.AttrAt(r) == delta_id &&
          storage::IsVisible(*table->delta().mvcc(r), snapshot, tid)) {
        rows.push_back({false, r});
      }
    }
  }
  return rows;
}

Result<std::vector<storage::RowLocation>> Database::ScanRange(
    storage::Table* table, size_t column, const storage::Value& lo,
    const storage::Value& hi, storage::Cid snapshot,
    storage::Tid tid) const {
  if (recovery_driver_ != nullptr && recovery_driver_->serving_degraded()) {
    HYRISE_NV_RETURN_NOT_OK(
        recovery_driver_->PrepareScanRange(table, column, lo, hi));
    // Index-free for the same reason as ScanEqual: the deferred index
    // build must not be observed half-done. The scan holds the write
    // mutex to serialize with the drain's chunked cell restores.
    std::lock_guard<std::mutex> guard(table->write_mutex());
    return core::ScanRange(table, column, lo, hi, snapshot, tid, nullptr);
  }
  return core::ScanRange(table, column, lo, hi, snapshot, tid,
                         indexes(table));
}

Result<storage::MergeStats> Database::Merge(const std::string& table_name) {
  HYRISE_NV_RETURN_NOT_OK(EnsureNotDegraded("merge"));
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  if (txn_manager_->PreparedCount() > 0) {
    // A merge would relocate rows the prepared write sets point at, and
    // the checkpoint below would move the replay base past the prepare
    // records. Retry once the coordinator has decided.
    return Status::Aborted(
        "merge refused: prepared 2PC transactions are in doubt");
  }
  auto table_result = catalog_->GetTable(table_name);
  if (!table_result.ok()) return table_result.status();
  obs::BlackboxWriter* bb = heap_->blackbox();
  if (bb != nullptr) {
    bb->Record(obs::BlackboxEventType::kMergeStart,
               (*table_result)->id(), (*table_result)->delta_row_count());
  }
  const uint64_t merge_start_ticks = obs::FastClock::NowTicks();
  auto stats_result =
      storage::MergeTable(**table_result, txn_manager_->watermark());
  if (!stats_result.ok()) return stats_result;
  if (bb != nullptr) {
    bb->Record(obs::BlackboxEventType::kMergeEnd, (*table_result)->id(),
               stats_result->rows_after, stats_result->dropped_rows,
               obs::FastClock::TicksToNanos(static_cast<int64_t>(
                   obs::FastClock::NowTicks() - merge_start_ticks)));
  }
  // Rebind index handles to the new generation.
  index::IndexSet* set = indexes(*table_result);
  if (set != nullptr) {
    HYRISE_NV_RETURN_NOT_OK(set->Attach());
  }
  // WAL modes must checkpoint now: logged row positions reference the
  // pre-merge layout, so the replay base has to move past the merge.
  if (log_manager_ != nullptr) {
    HYRISE_NV_RETURN_NOT_OK(log_manager_->WriteCheckpointNow(
        *catalog_, txn_manager_->commit_table()));
  }
  return stats_result;
}

Status Database::Checkpoint() {
  if (log_manager_ == nullptr) return Status::OK();
  // A checkpoint while rows are still placeholders would snapshot
  // kInvalidValueId cells as real data.
  HYRISE_NV_RETURN_NOT_OK(EnsureNotDegraded("checkpoint"));
  HYRISE_NV_RETURN_NOT_OK(EnsureWritable());
  if (txn_manager_->PreparedCount() > 0) {
    // A checkpoint would move the replay base past the kPrepare records
    // that keep in-doubt transactions recoverable. Retry after decide.
    return Status::Aborted(
        "checkpoint refused: prepared 2PC transactions are in doubt");
  }
  const uint64_t start_ticks = obs::FastClock::NowTicks();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kCheckpointStart);
  }
  Status status = log_manager_->WriteCheckpointNow(
      *catalog_, txn_manager_->commit_table());
  if (status.ok()) {
    if (obs::BlackboxWriter* bb = heap_->blackbox()) {
      bb->Record(obs::BlackboxEventType::kCheckpoint,
                 obs::FastClock::TicksToNanos(static_cast<int64_t>(
                     obs::FastClock::NowTicks() - start_ticks)));
    }
  }
  return status;
}

Status Database::Close() {
  // Stop the timeline and historian first: they must not flush or
  // decode the recorder after the close event seals the session (the
  // timeline hook also dereferences heap_ state that Close tears down).
  timeline_.reset();
  history_.reset();
  // Stop the drain before touching shared state below. A close while
  // still degraded is fine: restores are never re-logged, so the next
  // open simply re-runs analysis from the same WAL.
  if (recovery_driver_ != nullptr) recovery_driver_->StopDrain();
  if (read_only_) {
    // Salvage / degraded: nothing here may touch the image or the log.
    // In particular the image must NOT be marked clean — its seals were
    // never refreshed and parts of it are known-corrupt.
    return Status::OK();
  }
  // Transactions still open at shutdown (a serving session whose client
  // never committed, a leaked handle) are aborted, not leaked: their
  // claims are released and their inserts tombstoned, so the sealed
  // image contains no in-flight state and the next open sees none of
  // their effects.
  txn_manager_->AbortAllActive();
  if (log_manager_ != nullptr) {
    HYRISE_NV_RETURN_NOT_OK(log_manager_->SyncNow());
  }
  if (options_.mode == DurabilityMode::kNvm) {
    // Refresh the close-time checksums so the next open can deep-verify
    // mutable structures too (they are only authoritative after a clean
    // shutdown; MarkDirty at the next open invalidates them).
    recovery::SealForCleanShutdown(*heap_);
  }
  return heap_->CloseClean();
}

void Database::StartObservability(bool recovered) {
  txn_manager_->SetTxnSampling(options_.txn_sample_every);
  if (options_.install_crash_handler) {
    obs::InstallCrashHandler();
  }
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kOpen,
               static_cast<uint64_t>(options_.mode), recovered ? 1 : 0);
  }
  if (options_.enable_history_sampler) {
    history_ = std::make_unique<obs::HistorySampler>(
        options_.history_interval_ms, options_.history_capacity);
    history_->Start();
  }
  if (options_.enable_timeline) {
    obs::TimelineConfig config = obs::TimelineConfig::Default();
    config.interval_ms = options_.timeline_interval_ms;
    config.capacity = options_.timeline_capacity;
    timeline_ = std::make_unique<obs::TimelineRecorder>(std::move(config));
    // Gauges like RSS and NVM-region utilization are not maintained by
    // any hot path; sync them right before each sample so the timeline
    // sees live values.
    timeline_->SetPreSampleHook([this] { SyncPassiveMetrics(); });
    timeline_->Start();
  }
}

std::string Database::HistoryJson() const {
  if (history_ == nullptr) {
    return "{\"interval_ms\":0,\"capacity\":0,\"samples\":[]}";
  }
  return history_->ToJson();
}

std::string Database::TimelineJson() const {
  if (timeline_ == nullptr) {
    return "{\"interval_ms\":0,\"capacity\":0,\"samples\":[]}";
  }
  return timeline_->ToJson();
}

std::string Database::TimelineCsv() const {
  if (timeline_ == nullptr) return "";
  return timeline_->ToCsv();
}

namespace {

/// Resident set size from /proc/self/statm (0 where unavailable).
int64_t ReadRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long vm_pages = 0;
  long long rss_pages = 0;
  int fields = std::fscanf(f, "%lld %lld", &vm_pages, &rss_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  return static_cast<int64_t>(rss_pages) * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

}  // namespace

void Database::SyncPassiveMetrics() {
  auto& registry = obs::MetricsRegistry::Instance();
  // Mirror passively-maintained totals into the registry so one snapshot
  // holds everything. These sources already count in their own hot paths
  // (NvmStats atomics, WAL writer fields); re-counting them live would
  // double the bookkeeping for no benefit.
  const nvm::NvmStats& stats = heap_->region().stats();
  registry.GetCounter("nvm.persist.count")
      .Store(stats.persist_calls.load(std::memory_order_relaxed));
  registry.GetCounter("nvm.fence.count")
      .Store(stats.fences.load(std::memory_order_relaxed));
  registry.GetCounter("nvm.flush.lines")
      .Store(stats.flush_lines.load(std::memory_order_relaxed));
  registry.GetCounter("nvm.flush.bytes")
      .Store(stats.flushed_bytes.load(std::memory_order_relaxed));
  registry.GetGauge("alloc.heap_used.bytes")
      .Set(static_cast<int64_t>(heap_->allocator().HeapUsedBytes()));
  registry.GetGauge("process.rss_bytes").Set(ReadRssBytes());
  // Region utilization includes the metadata prefix (header, intent
  // table, flight recorder) ahead of the allocatable heap, so
  // used/capacity reflects how full the mapped image actually is.
  registry.GetGauge("nvm.region.used_bytes")
      .Set(static_cast<int64_t>(alloc::PAllocator::HeapBegin() +
                                heap_->allocator().HeapUsedBytes()));
  registry.GetGauge("nvm.region.capacity_bytes")
      .Set(static_cast<int64_t>(heap_->region().size()));
  registry.GetGauge("db.read_only").Set(read_only_ ? 1 : 0);
  registry.GetGauge("db.serving_degraded")
      .Set(serving_state() == ServingState::kServingDegraded ? 1 : 0);
  if (recovery_driver_ != nullptr) {
    const recovery::RecoveryProgress progress = recovery_progress();
    registry.GetGauge("recovery.pending.rows")
        .Set(static_cast<int64_t>(progress.total_rows -
                                  progress.restored_rows));
    registry.GetGauge("recovery.progress.percent")
        .Set(static_cast<int64_t>(progress.percent()));
  }
  if (log_manager_ != nullptr) {
    const wal::LogWriter& writer = log_manager_->writer();
    registry.GetCounter("wal.io.retries").Store(writer.io_retries());
    registry.GetCounter("wal.commits.total").Store(writer.total_commits());
    registry.GetCounter("wal.commits.synced").Store(writer.synced_commits());
    registry.GetCounter("wal.bytes.logged")
        .Store(log_manager_->bytes_logged());
  }
}

obs::MetricsSnapshot Database::MetricsSnapshot() {
  SyncPassiveMetrics();
  return obs::MetricsRegistry::Instance().Snapshot();
}

}  // namespace hyrise_nv::core
