#include "storage/schema.h"

#include <cstring>
#include <unordered_set>

namespace hyrise_nv::storage {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

bool ValueMatchesType(const Value& value, DataType type) {
  switch (type) {
    case DataType::kInt64:
      return std::holds_alternative<int64_t>(value);
    case DataType::kDouble:
      return std::holds_alternative<double>(value);
    case DataType::kString:
      return std::holds_alternative<std::string>(value);
  }
  return false;
}

Result<Schema> Schema::Make(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  std::unordered_set<std::string> names;
  for (const auto& col : columns) {
    if (col.name.empty()) {
      return Status::InvalidArgument("empty column name");
    }
    if (!names.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column name: " + col.name);
    }
    switch (col.type) {
      case DataType::kInt64:
      case DataType::kDouble:
      case DataType::kString:
        break;
      default:
        return Status::InvalidArgument("invalid data type for column " +
                                       col.name);
    }
  }
  return Schema(std::move(columns));
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Status Schema::CheckRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueMatchesType(row[i], columns_[i].type)) {
      return Status::InvalidArgument("type mismatch in column " +
                                     columns_[i].name);
    }
  }
  return Status::OK();
}

std::vector<uint8_t> Schema::Serialize() const {
  std::vector<uint8_t> out;
  auto put_u32 = [&out](uint32_t v) {
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    out.insert(out.end(), p, p + 4);
  };
  put_u32(static_cast<uint32_t>(columns_.size()));
  for (const auto& col : columns_) {
    put_u32(static_cast<uint32_t>(col.type));
    put_u32(static_cast<uint32_t>(col.name.size()));
    out.insert(out.end(), col.name.begin(), col.name.end());
  }
  return out;
}

Result<Schema> Schema::Deserialize(const uint8_t* data, size_t len) {
  size_t pos = 0;
  auto get_u32 = [&](uint32_t* v) -> bool {
    if (pos + 4 > len) return false;
    std::memcpy(v, data + pos, 4);
    pos += 4;
    return true;
  };
  uint32_t ncols = 0;
  if (!get_u32(&ncols)) {
    return Status::Corruption("schema blob truncated (column count)");
  }
  std::vector<ColumnDef> columns;
  columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    uint32_t type = 0, name_len = 0;
    if (!get_u32(&type) || !get_u32(&name_len) || pos + name_len > len) {
      return Status::Corruption("schema blob truncated (column " +
                                std::to_string(i) + ")");
    }
    columns.push_back(ColumnDef{
        std::string(reinterpret_cast<const char*>(data + pos), name_len),
        static_cast<DataType>(type)});
    pos += name_len;
  }
  return Schema::Make(std::move(columns));
}

}  // namespace hyrise_nv::storage
