#ifndef HYRISE_NV_STORAGE_TABLE_H_
#define HYRISE_NV_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "alloc/pheap.h"
#include "common/status.h"
#include "storage/delta_partition.h"
#include "storage/layout.h"
#include "storage/main_partition.h"
#include "storage/mvcc.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// A Hyrise-style table: immutable dictionary-compressed main partition +
/// append-only delta partition + per-row MVCC metadata, all resident on
/// the persistent heap.
///
/// The Table object is a volatile handle; every byte of state lives on
/// NVM. Attach() rebinds after restart. Thread safety: concurrent readers
/// and a single writer per table at a time — writers from different
/// threads serialise on write_mutex() (Database::Insert holds it across
/// the delta append, index maintenance, and WAL logging); scans are safe
/// against concurrent appends because row visibility gates on the MVCC
/// vector, which grows strictly after row payloads are in place.
class Table {
 public:
  /// Allocates and formats a fresh table (meta + group + schema blob) on
  /// the heap. Returns the PTableMeta offset for the catalog.
  /// `publish_intent` protects the whole object tree: the caller must
  /// CommitIntent after persisting a reachable reference to the returned
  /// offset (the catalog append), or the structures are reclaimed on
  /// recovery.
  static Result<uint64_t> Create(alloc::PHeap& heap, const std::string& name,
                                 uint64_t table_id, const Schema& schema,
                                 alloc::IntentHandle* publish_intent);

  /// Binds a handle to an existing table.
  static Result<std::unique_ptr<Table>> Attach(alloc::PHeap& heap,
                                               uint64_t meta_offset);

  const std::string& name() const { return name_; }
  uint64_t id() const { return meta_->table_id; }
  const Schema& schema() const { return schema_; }
  uint64_t meta_offset() const { return meta_offset_; }

  uint64_t main_row_count() const { return main_.row_count(); }
  uint64_t delta_row_count() const { return delta_.row_count(); }

  MainPartition& main() { return main_; }
  const MainPartition& main() const { return main_; }
  DeltaPartition& delta() { return delta_; }
  const DeltaPartition& delta() const { return delta_; }

  PTableMeta* meta() { return meta_; }
  PTableGroup* group() { return group_; }
  alloc::PHeap& heap() { return *heap_; }

  /// Appends a new row owned by `tid` to the delta. Returns its location.
  Result<RowLocation> AppendRow(const std::vector<Value>& row, Tid tid);

  /// Appends a dictionary-encoded row (log replay path).
  Result<RowLocation> AppendEncodedRow(const std::vector<ValueId>& ids,
                                       Tid tid) {
    auto row_result = delta_.AppendEncodedRow(ids, tid);
    if (!row_result.ok()) return row_result.status();
    return RowLocation{false, *row_result};
  }

  /// Appends placeholder delta rows with final MVCC state; the on-demand
  /// recovery driver fills in the values later.
  Status ReservePlaceholderRows(const std::vector<MvccEntry>& entries) {
    return delta_.ReservePlaceholderRows(entries);
  }

  /// MVCC entry of a row.
  MvccEntry* mvcc(RowLocation loc) {
    return loc.in_main ? main_.mvcc(loc.row) : delta_.mvcc(loc.row);
  }
  const MvccEntry* mvcc(RowLocation loc) const {
    return loc.in_main ? main_.mvcc(loc.row) : delta_.mvcc(loc.row);
  }

  /// Reads one cell (decoding through the partition dictionary).
  Value GetValue(RowLocation loc, size_t column) const;

  /// Materialises a full row.
  std::vector<Value> GetRow(RowLocation loc) const;

  /// Calls `fn(RowLocation)` for every row visible to (snapshot, tid), in
  /// main-then-delta order.
  template <typename Fn>
  void ForEachVisibleRow(Cid snapshot, Tid tid, Fn&& fn) const {
    const uint64_t main_rows = main_.row_count();
    for (uint64_t r = 0; r < main_rows; ++r) {
      if (IsVisible(*main_.mvcc(r), snapshot, tid)) {
        fn(RowLocation{true, r});
      }
    }
    const uint64_t delta_rows = delta_.row_count();
    for (uint64_t r = 0; r < delta_rows; ++r) {
      if (IsVisible(*delta_.mvcc(r), snapshot, tid)) {
        fn(RowLocation{false, r});
      }
    }
  }

  /// Number of rows visible to (snapshot, tid).
  uint64_t CountVisible(Cid snapshot, Tid tid) const;

  /// Post-crash repair: truncates torn inserts. Dictionary dedup maps are
  /// rebuilt by Attach. Cost is O(delta columns), not O(data).
  Status RepairAfterCrash() { return delta_.RepairTornInserts(); }

  /// Rebinds the handle to the current group (after a merge swap).
  Status ReattachGroup();

  /// Serialises writers appending to this table (delta append + index
  /// maintenance + dictionary-encoded logging share the structures this
  /// guards). Volatile — never part of the NVM image.
  std::mutex& write_mutex() { return write_mutex_; }

 private:
  Table(alloc::PHeap& heap, uint64_t meta_offset)
      : heap_(&heap), meta_offset_(meta_offset) {}

  Status BindHandles();

  alloc::PHeap* heap_;
  uint64_t meta_offset_;
  PTableMeta* meta_ = nullptr;
  PTableGroup* group_ = nullptr;
  std::string name_;
  Schema schema_;
  MainPartition main_;
  DeltaPartition delta_;
  std::mutex write_mutex_;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_TABLE_H_
