#ifndef HYRISE_NV_STORAGE_MAIN_PARTITION_H_
#define HYRISE_NV_STORAGE_MAIN_PARTITION_H_

#include <vector>

#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/attribute_vector.h"
#include "storage/dictionary.h"
#include "storage/layout.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// One column of the immutable main partition: sorted dictionary plus
/// bit-packed attribute vector. Rebuilt wholesale by merge.
class MainColumn {
 public:
  MainColumn() = default;
  MainColumn(DataType type, nvm::PmemRegion* region,
             alloc::PAllocator* alloc, PMainColumnMeta* meta,
             uint64_t row_count);

  static void Format(nvm::PmemRegion& region, PMainColumnMeta* meta);

  Status Validate() const;

  Value GetValue(uint64_t row) const {
    return dict_.GetValue(attr_.Get(row));
  }
  ValueId AttrAt(uint64_t row) const { return attr_.Get(row); }

  const MainDictionary& dictionary() const { return dict_; }
  const PackedAttributeVector& attr() const { return attr_; }

 private:
  MainDictionary dict_;
  PackedAttributeVector attr_;
};

/// The main partition of a table: immutable columns + MVCC vector for the
/// main rows. Deletes of main rows mutate only the MVCC entries; the
/// value data never changes between merges.
class MainPartition {
 public:
  MainPartition() = default;

  /// Formats empty main structures (a fresh table has zero main rows).
  static void Format(nvm::PmemRegion& region, PTableGroup* group,
                     uint64_t num_columns);

  Status Attach(const Schema& schema, nvm::PmemRegion* region,
                alloc::PAllocator* alloc, PTableGroup* group);

  uint64_t row_count() const { return row_count_; }
  size_t num_columns() const { return columns_.size(); }

  MainColumn& column(size_t i) { return columns_[i]; }
  const MainColumn& column(size_t i) const { return columns_[i]; }

  MvccEntry* mvcc(uint64_t row) {
    HYRISE_NV_DCHECK(row < row_count_, "main row out of range");
    return mvcc_.data() + row;
  }
  const MvccEntry* mvcc(uint64_t row) const {
    HYRISE_NV_DCHECK(row < row_count_, "main row out of range");
    return mvcc_.data() + row;
  }

  alloc::PVector<MvccEntry>& mvcc_vector() { return mvcc_; }

 private:
  std::vector<MainColumn> columns_;
  alloc::PVector<MvccEntry> mvcc_;
  uint64_t row_count_ = 0;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_MAIN_PARTITION_H_
