#ifndef HYRISE_NV_STORAGE_DELTA_PARTITION_H_
#define HYRISE_NV_STORAGE_DELTA_PARTITION_H_

#include <vector>

#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/layout.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// One column of the append-only delta partition: unsorted dictionary plus
/// an unencoded value-id vector.
class DeltaColumn {
 public:
  DeltaColumn() = default;
  DeltaColumn(DataType type, nvm::PmemRegion* region,
              alloc::PAllocator* alloc, PDeltaColumnMeta* meta);

  static void Format(nvm::PmemRegion& region, PDeltaColumnMeta* meta) {
    DeltaDictionary::Format(region, meta);
  }

  /// Validates and rebuilds volatile dictionary state.
  Status Attach();

  /// Appends `value` for the next row: dictionary insert + attribute
  /// append, each persisted. The row itself only exists once the
  /// partition's MVCC entry is appended (the per-row commit point).
  Status AppendValue(const Value& value);

  Value GetValue(uint64_t row) const;
  ValueId AttrAt(uint64_t row) const { return attr_.Get(row); }

  /// Appends an already-encoded value id (dictionary-encoded log replay;
  /// the caller guarantees the id exists in the dictionary).
  Status AppendEncoded(ValueId id) {
    HYRISE_NV_DCHECK(id < dict_.size(), "encoded id beyond dictionary");
    return attr_.AppendUnfenced(id);
  }

  const DeltaDictionary& dictionary() const { return dict_; }
  DeltaDictionary& dictionary() { return dict_; }

  /// Appends `count` placeholder attribute entries holding the sentinel
  /// kInvalidValueId, for rows staged by the on-demand recovery driver.
  /// The sentinel can never equal a dictionary id, so scans skip
  /// unrestored rows instead of mis-matching them.
  Status ReservePlaceholders(uint64_t count) {
    return attr_.AppendFill(kInvalidValueId, count);
  }

  /// Replaces the placeholder at `row` with an already-encoded id
  /// (persisted attribute overwrite; the id must already be in the
  /// dictionary — the recovery analysis pass encodes every staged row so
  /// restores never mutate dictionaries under concurrent readers).
  Status RestoreEncodedAt(uint64_t row, ValueId id);

  uint64_t attr_size() const { return attr_.size(); }

  /// Rolls torn trailing appends back to `rows` entries (recovery).
  void TruncateAttr(uint64_t rows) { attr_.TruncateTo(rows); }

 private:
  DeltaDictionary dict_;
  alloc::PVector<uint32_t> attr_;
};

/// The delta partition of a table: one DeltaColumn per schema column plus
/// the delta MVCC vector. Row count == mvcc.size(); column attribute
/// vectors may transiently be longer during an insert (torn inserts are
/// truncated on recovery).
class DeltaPartition {
 public:
  DeltaPartition() = default;

  /// Formats all column metas and the MVCC vector of `group`.
  static void Format(nvm::PmemRegion& region, PTableGroup* group,
                     uint64_t num_columns);

  /// Binds handles to the group's delta structures.
  Status Attach(const Schema& schema, nvm::PmemRegion* region,
                alloc::PAllocator* alloc, PTableGroup* group);

  uint64_t row_count() const { return mvcc_.size(); }
  size_t num_columns() const { return columns_.size(); }

  DeltaColumn& column(size_t i) { return columns_[i]; }
  const DeltaColumn& column(size_t i) const { return columns_[i]; }

  /// Appends a full row owned by `tid`. Returns the new delta row number.
  /// Crash-atomic: the row exists iff the MVCC append (last step)
  /// committed.
  Result<uint64_t> AppendRow(const std::vector<Value>& row, Tid tid);

  /// Appends a dictionary-encoded row (log replay path).
  Result<uint64_t> AppendEncodedRow(const std::vector<ValueId>& ids,
                                    Tid tid);

  /// Appends `entries.size()` placeholder rows whose MVCC state is
  /// already final but whose attribute cells hold kInvalidValueId until
  /// the on-demand recovery driver restores their values.
  Status ReservePlaceholderRows(const std::vector<MvccEntry>& entries);

  MvccEntry* mvcc(uint64_t row) {
    HYRISE_NV_DCHECK(row < mvcc_.size(), "mvcc row out of range");
    return mvcc_data() + row;
  }
  const MvccEntry* mvcc(uint64_t row) const {
    HYRISE_NV_DCHECK(row < mvcc_.size(), "mvcc row out of range");
    return const_cast<DeltaPartition*>(this)->mvcc_data() + row;
  }

  alloc::PVector<MvccEntry>& mvcc_vector() { return mvcc_; }

  /// Truncates column attribute vectors that outgrew the MVCC vector
  /// (crash landed mid-insert). Called by recovery.
  Status RepairTornInserts();

 private:
  MvccEntry* mvcc_data() { return mvcc_.data(); }

  std::vector<DeltaColumn> columns_;
  alloc::PVector<MvccEntry> mvcc_;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_DELTA_PARTITION_H_
