#ifndef HYRISE_NV_STORAGE_CATALOG_H_
#define HYRISE_NV_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "alloc/pheap.h"
#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/table.h"

namespace hyrise_nv::storage {

/// Root name under which the catalog is registered in the region header.
inline constexpr const char* kCatalogRootName = "catalog";

/// The persistent table directory. Owns the volatile Table handles bound
/// to each persistent table.
class Catalog {
 public:
  /// Formats a fresh catalog in the heap and registers its root.
  static Result<std::unique_ptr<Catalog>> Format(alloc::PHeap& heap);

  /// Binds to the existing catalog of an opened heap and attaches all
  /// tables. Tables whose PTableMeta offset is in `skip_table_offsets`
  /// are left unbound (quarantined by salvage recovery).
  static Result<std::unique_ptr<Catalog>> Attach(
      alloc::PHeap& heap,
      const std::unordered_set<uint64_t>* skip_table_offsets = nullptr);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Catalog);

  /// Creates a table. The table becomes durable (reachable) atomically
  /// with its catalog entry.
  Result<Table*> CreateTable(const std::string& name, const Schema& schema);

  /// Recreates a table preserving its id (checkpoint load / log replay).
  Result<Table*> RestoreTable(const std::string& name, const Schema& schema,
                              uint64_t table_id);

  /// Table lookup by id (NotFound if absent).
  Result<Table*> GetTableById(uint64_t table_id) const;

  /// Table lookup by name (NotFound if absent).
  Result<Table*> GetTable(const std::string& name) const;

  /// All attached tables, in creation order.
  const std::vector<std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  size_t num_tables() const { return tables_.size(); }

  /// Post-crash repair for every table.
  Status RepairAfterCrash();

 private:
  explicit Catalog(alloc::PHeap& heap) : heap_(&heap) {}

  Status BindAndAttachTables(
      const std::unordered_set<uint64_t>* skip_table_offsets);

  alloc::PHeap* heap_;
  PCatalogMeta* meta_ = nullptr;
  alloc::PVector<uint64_t> table_offsets_;
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_CATALOG_H_
