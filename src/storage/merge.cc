#include "storage/merge.h"

#include <algorithm>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/bit_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "storage/checksums.h"
#include "storage/dictionary.h"

namespace hyrise_nv::storage {

namespace {

/// Default bucket count for the fresh delta hash index of the new group.
constexpr uint64_t kFreshIndexBuckets = 1024;

/// Frees the active buffer of a persistent vector (used when retiring the
/// old group). Best-effort: failures only leak.
void FreeVectorBuffer(alloc::PAllocator& alloc,
                      const alloc::PVectorDesc& desc) {
  const auto& slot = desc.slots[desc.version & 1];
  if (slot.data != 0) {
    (void)alloc.Free(slot.data);
  }
}

/// Per-column dictionary merge result: the merged (sorted, distinct)
/// dictionary plus id remappings for both old partitions.
struct DictMerge {
  std::vector<uint64_t> merged_values;  // numeric bits or *new* blob offsets
  std::vector<char> merged_blob;        // strings only
  std::vector<ValueId> main_map;        // old main id -> new id
  std::vector<ValueId> delta_map;       // old delta id -> new id
};

DictMerge MergeNumericDicts(DataType type,
                            const alloc::PVector<uint64_t>& main_values,
                            const DeltaDictionary& delta_dict) {
  DictMerge out;
  const uint64_t n_main = main_values.size();
  const uint64_t n_delta = delta_dict.size();
  out.main_map.resize(n_main, kInvalidValueId);
  out.delta_map.resize(n_delta, kInvalidValueId);

  // Delta ids sorted by value; main is already sorted.
  std::vector<std::pair<uint64_t, ValueId>> delta_sorted;
  delta_sorted.reserve(n_delta);
  // The delta dictionary stores numeric bits directly in its value vector;
  // re-encode through the public accessor to stay independent of layout.
  for (uint64_t id = 0; id < n_delta; ++id) {
    delta_sorted.emplace_back(
        EncodeNumeric(delta_dict.GetValue(static_cast<ValueId>(id)), type),
        static_cast<ValueId>(id));
  }
  std::sort(delta_sorted.begin(), delta_sorted.end(),
            [type](const auto& a, const auto& b) {
              return CompareNumericEncoded(type, a.first, b.first) < 0;
            });

  uint64_t i = 0, j = 0;
  while (i < n_main || j < n_delta) {
    int cmp;
    if (i >= n_main) {
      cmp = 1;
    } else if (j >= n_delta) {
      cmp = -1;
    } else {
      cmp = CompareNumericEncoded(type, main_values.Get(i),
                                  delta_sorted[j].first);
    }
    const auto new_id = static_cast<ValueId>(out.merged_values.size());
    if (cmp < 0) {
      out.merged_values.push_back(main_values.Get(i));
      out.main_map[i++] = new_id;
    } else if (cmp > 0) {
      out.merged_values.push_back(delta_sorted[j].first);
      out.delta_map[delta_sorted[j++].second] = new_id;
    } else {
      out.merged_values.push_back(main_values.Get(i));
      out.main_map[i++] = new_id;
      out.delta_map[delta_sorted[j++].second] = new_id;
    }
  }
  return out;
}

DictMerge MergeStringDicts(const MainDictionary& main_dict,
                           const alloc::PVector<uint64_t>& main_values,
                           const DeltaDictionary& delta_dict) {
  DictMerge out;
  const uint64_t n_main = main_values.size();
  const uint64_t n_delta = delta_dict.size();
  out.main_map.resize(n_main, kInvalidValueId);
  out.delta_map.resize(n_delta, kInvalidValueId);

  // Materialise both dictionaries' strings (views would dangle once we
  // start writing the new blob, and merge is stop-the-world anyway).
  std::vector<std::string> main_strings(n_main);
  for (uint64_t id = 0; id < n_main; ++id) {
    main_strings[id] = std::get<std::string>(
        main_dict.GetValue(static_cast<ValueId>(id)));
  }
  std::vector<std::pair<std::string, ValueId>> delta_sorted;
  delta_sorted.reserve(n_delta);
  for (uint64_t id = 0; id < n_delta; ++id) {
    delta_sorted.emplace_back(std::get<std::string>(delta_dict.GetValue(
                                  static_cast<ValueId>(id))),
                              static_cast<ValueId>(id));
  }
  std::sort(delta_sorted.begin(), delta_sorted.end());

  auto emit = [&out](const std::string& text) -> ValueId {
    const auto new_id = static_cast<ValueId>(out.merged_values.size());
    const uint64_t offset = out.merged_blob.size();
    const uint32_t len = static_cast<uint32_t>(text.size());
    out.merged_blob.resize(offset + 4 + text.size());
    std::memcpy(out.merged_blob.data() + offset, &len, 4);
    std::memcpy(out.merged_blob.data() + offset + 4, text.data(),
                text.size());
    out.merged_values.push_back(offset);
    return new_id;
  };

  uint64_t i = 0, j = 0;
  while (i < n_main || j < n_delta) {
    int cmp;
    if (i >= n_main) {
      cmp = 1;
    } else if (j >= n_delta) {
      cmp = -1;
    } else {
      cmp = main_strings[i].compare(delta_sorted[j].first);
    }
    if (cmp < 0) {
      out.main_map[i] = emit(main_strings[i]);
      ++i;
    } else if (cmp > 0) {
      out.delta_map[delta_sorted[j].second] = emit(delta_sorted[j].first);
      ++j;
    } else {
      const ValueId id = emit(main_strings[i]);
      out.main_map[i++] = id;
      out.delta_map[delta_sorted[j++].second] = id;
    }
  }
  return out;
}

/// Builds the group-key CSR (offsets + positions) for one column of the
/// new main.
Status BuildGroupKeyIndex(nvm::PmemRegion& region,
                          alloc::PAllocator& alloc, PMainColumnMeta* col,
                          const std::vector<ValueId>& attr_ids,
                          uint64_t dict_size) {
  std::vector<uint64_t> offsets(dict_size + 1, 0);
  for (const ValueId id : attr_ids) offsets[id + 1]++;
  for (uint64_t v = 1; v <= dict_size; ++v) offsets[v] += offsets[v - 1];
  std::vector<uint64_t> positions(attr_ids.size());
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (uint64_t row = 0; row < attr_ids.size(); ++row) {
    positions[cursor[attr_ids[row]]++] = row;
  }
  alloc::PVector<uint64_t> gk_offsets(&region, &alloc, &col->gk_offsets);
  alloc::PVector<uint64_t> gk_positions(&region, &alloc,
                                        &col->gk_positions);
  HYRISE_NV_RETURN_NOT_OK(gk_offsets.BulkAppend(offsets.data(),
                                                offsets.size()));
  HYRISE_NV_RETURN_NOT_OK(
      gk_positions.BulkAppend(positions.data(), positions.size()));
  SealMainGroupKey(region, col);
  return Status::OK();
}

}  // namespace

Status BuildMainGroupKey(Table& table, uint64_t column) {
  auto& heap = table.heap();
  PMainColumnMeta* col = table.group()->main_col(column);
  const MainColumn& main_col = table.main().column(column);
  const uint64_t rows = table.main_row_count();
  std::vector<ValueId> attr_ids(rows);
  for (uint64_t r = 0; r < rows; ++r) attr_ids[r] = main_col.AttrAt(r);
  return BuildGroupKeyIndex(heap.region(), heap.allocator(), col, attr_ids,
                            main_col.dictionary().size());
}

Result<MergeStats> MergeTable(Table& table, Cid snapshot) {
  Stopwatch timer;
  MergeStats stats;
  auto& heap = table.heap();
  auto& region = heap.region();
  auto& alloc = heap.allocator();
  const Schema& schema = table.schema();
  const uint64_t ncols = schema.num_columns();
  PTableGroup* old_group = table.group();

  stats.main_rows_before = table.main_row_count();
  stats.delta_rows_before = table.delta_row_count();

  // 1. Survivors: committed-and-not-deleted versions as of `snapshot`.
  std::vector<RowLocation> survivors;
  survivors.reserve(stats.main_rows_before + stats.delta_rows_before);
  table.ForEachVisibleRow(snapshot, kTidNone, [&](RowLocation loc) {
    survivors.push_back(loc);
  });
  stats.rows_after = survivors.size();
  stats.dropped_rows =
      stats.main_rows_before + stats.delta_rows_before - survivors.size();

  // 2. Allocate the new group.
  alloc::IntentHandle group_intent;
  auto group_off_result = alloc.AllocWithIntent(
      PTableGroup::ByteSize(ncols), &group_intent);
  if (!group_off_result.ok()) return group_off_result.status();
  const uint64_t new_group_off = *group_off_result;
  auto* new_group = heap.Resolve<PTableGroup>(new_group_off);
  std::memset(new_group, 0, PTableGroup::ByteSize(ncols));
  MainPartition::Format(region, new_group, ncols);
  DeltaPartition::Format(region, new_group, ncols);

  // 3. Per column: merged dictionary + re-encoded attribute vector +
  //    group-key index for previously indexed columns.
  for (uint64_t c = 0; c < ncols; ++c) {
    const DataType type = schema.column(c).type;
    const MainColumn& old_main = table.main().column(c);
    const DeltaColumn& old_delta = table.delta().column(c);

    // Reach the old main's raw sorted values through a temporary handle.
    alloc::PVector<uint64_t> old_main_values(
        &region, &alloc, &old_group->main_col(c)->dict_values);

    DictMerge merge =
        type == DataType::kString
            ? MergeStringDicts(old_main.dictionary(), old_main_values,
                               old_delta.dictionary())
            : MergeNumericDicts(type, old_main_values,
                                old_delta.dictionary());

    // New attribute ids in survivor order.
    std::vector<ValueId> attr_ids(survivors.size());
    for (uint64_t r = 0; r < survivors.size(); ++r) {
      const RowLocation loc = survivors[r];
      const ValueId old_id = loc.in_main ? old_main.AttrAt(loc.row)
                                         : old_delta.AttrAt(loc.row);
      attr_ids[r] = loc.in_main ? merge.main_map[old_id]
                                : merge.delta_map[old_id];
      HYRISE_NV_DCHECK(attr_ids[r] != kInvalidValueId,
                       "merge lost a dictionary mapping");
    }

    PMainColumnMeta* new_col = new_group->main_col(c);
    alloc::PVector<uint64_t> new_values(&region, &alloc,
                                        &new_col->dict_values);
    HYRISE_NV_RETURN_NOT_OK(new_values.BulkAppend(
        merge.merged_values.data(), merge.merged_values.size()));
    if (type == DataType::kString) {
      alloc::PVector<char> new_blob(&region, &alloc, &new_col->dict_blob);
      HYRISE_NV_RETURN_NOT_OK(new_blob.BulkAppend(
          merge.merged_blob.data(), merge.merged_blob.size()));
    }
    const uint8_t bits = BitsFor(
        merge.merged_values.empty() ? 0 : merge.merged_values.size() - 1);
    new_col->bits = bits;
    region.Persist(&new_col->bits, sizeof(new_col->bits));
    alloc::PVector<uint64_t> new_words(&region, &alloc,
                                       &new_col->attr_words);
    HYRISE_NV_RETURN_NOT_OK(PackedAttributeVector::Build(
        new_words, bits, attr_ids.data(), attr_ids.size()));
    SealMainColumn(region, new_col);

    // Group-key index if this column was indexed in the old group.
    for (uint64_t s = 0; s < kMaxIndexesPerTable; ++s) {
      if (old_group->indexes[s].state == 1 &&
          old_group->indexes[s].column == c) {
        HYRISE_NV_RETURN_NOT_OK(BuildGroupKeyIndex(
            region, alloc, new_col, attr_ids, merge.merged_values.size()));
        break;
      }
    }
  }

  // 4. New main MVCC: keep original begin CIDs, clear claims/ends.
  {
    alloc::PVector<MvccEntry> new_mvcc(&region, &alloc,
                                       &new_group->main_mvcc);
    std::vector<MvccEntry> entries(survivors.size());
    for (uint64_t r = 0; r < survivors.size(); ++r) {
      const MvccEntry* old_entry = table.mvcc(survivors[r]);
      entries[r].begin = old_entry->begin;
      entries[r].end = kCidInfinity;
      entries[r].tid = kTidNone;
    }
    HYRISE_NV_RETURN_NOT_OK(
        new_mvcc.BulkAppend(entries.data(), entries.size()));
    new_group->main_row_count = survivors.size();
    region.Persist(&new_group->main_row_count,
                   sizeof(new_group->main_row_count));
  }

  // 5. Fresh (empty) delta-side index slots for previously indexed
  //    columns, preserving each index's kind.
  for (uint64_t s = 0; s < kMaxIndexesPerTable; ++s) {
    const PIndexMeta& old_idx = old_group->indexes[s];
    if (old_idx.state != 1) continue;
    PIndexMeta* new_idx = &new_group->indexes[s];
    new_idx->kind = old_idx.kind;
    new_idx->column = old_idx.column;
    alloc::PVector<uint64_t>::Format(region, &new_idx->buckets);
    alloc::PVector<uint64_t>::Format(region, &new_idx->entries);
    if (old_idx.kind == kIndexSkipList) {
      // Fresh head node for an empty skip list.
      auto head_result = alloc.Alloc(sizeof(PSkipNode));
      if (!head_result.ok()) return head_result.status();
      auto* head =
          reinterpret_cast<PSkipNode*>(region.base() + *head_result);
      std::memset(head, 0, sizeof(PSkipNode));
      head->height = kSkipListMaxHeight;
      region.Persist(head, sizeof(PSkipNode));
      new_idx->head_off = *head_result;
      new_idx->bucket_count = 0;
    } else {
      new_idx->bucket_count = kFreshIndexBuckets;
      alloc::PVector<uint64_t> buckets(&region, &alloc,
                                       &new_idx->buckets);
      HYRISE_NV_RETURN_NOT_OK(buckets.AppendFill(0, kFreshIndexBuckets));
      new_idx->head_off = 0;
    }
    new_idx->state = 1;
    region.Persist(new_idx, sizeof(PIndexMeta));
  }

  // 6. Publish: persist the whole group, then the single atomic swap.
  region.Persist(new_group, PTableGroup::ByteSize(ncols));
  region.AtomicPersist64(&table.meta()->group_off, new_group_off);
  alloc.CommitIntent(group_intent);

  // 7. Retire the old group (best-effort; a crash here only leaks).
  for (uint64_t c = 0; c < ncols; ++c) {
    PMainColumnMeta* col = old_group->main_col(c);
    FreeVectorBuffer(alloc, col->dict_values);
    FreeVectorBuffer(alloc, col->dict_blob);
    FreeVectorBuffer(alloc, col->attr_words);
    FreeVectorBuffer(alloc, col->gk_offsets);
    FreeVectorBuffer(alloc, col->gk_positions);
    PDeltaColumnMeta* dcol = old_group->delta_col(c, ncols);
    FreeVectorBuffer(alloc, dcol->dict_values);
    FreeVectorBuffer(alloc, dcol->dict_blob);
    FreeVectorBuffer(alloc, dcol->attr);
  }
  FreeVectorBuffer(alloc, old_group->main_mvcc);
  FreeVectorBuffer(alloc, old_group->delta_mvcc);
  for (uint64_t s = 0; s < kMaxIndexesPerTable; ++s) {
    if (old_group->indexes[s].state == 1) {
      FreeVectorBuffer(alloc, old_group->indexes[s].buckets);
      FreeVectorBuffer(alloc, old_group->indexes[s].entries);
    }
  }
  (void)alloc.Free(region.OffsetOf(old_group));

  HYRISE_NV_RETURN_NOT_OK(table.ReattachGroup());
  stats.seconds = timer.ElapsedSeconds();
#if HYRISE_NV_METRICS_ENABLED
  auto& registry = obs::MetricsRegistry::Instance();
  static obs::Histogram& duration =
      registry.GetHistogram("merge.duration_ns");
  static obs::Counter& merges = registry.GetCounter("merge.count");
  static obs::Counter& merged_rows =
      registry.GetCounter("merge.rows.merged");
  static obs::Counter& dropped_rows =
      registry.GetCounter("merge.rows.dropped");
  duration.Record(static_cast<uint64_t>(stats.seconds * 1e9));
  merges.Inc();
  merged_rows.Add(stats.rows_after);
  dropped_rows.Add(stats.dropped_rows);
#endif
  return stats;
}

}  // namespace hyrise_nv::storage
