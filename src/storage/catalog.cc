#include "storage/catalog.h"

#include <cstring>

namespace hyrise_nv::storage {

Result<std::unique_ptr<Catalog>> Catalog::Format(alloc::PHeap& heap) {
  alloc::IntentHandle intent;
  auto meta_off_result =
      heap.allocator().AllocWithIntent(sizeof(PCatalogMeta), &intent);
  if (!meta_off_result.ok()) return meta_off_result.status();
  const uint64_t meta_off = *meta_off_result;
  auto* meta = heap.Resolve<PCatalogMeta>(meta_off);
  std::memset(meta, 0, sizeof(PCatalogMeta));
  meta->next_table_id = 1;
  heap.region().Persist(meta, sizeof(PCatalogMeta));
  HYRISE_NV_RETURN_NOT_OK(heap.SetRoot(kCatalogRootName, meta_off));
  heap.allocator().CommitIntent(intent);

  auto catalog = std::unique_ptr<Catalog>(new Catalog(heap));
  catalog->meta_ = meta;
  catalog->table_offsets_ = alloc::PVector<uint64_t>(
      &heap.region(), &heap.allocator(), &meta->table_meta_offsets);
  return catalog;
}

Result<std::unique_ptr<Catalog>> Catalog::Attach(
    alloc::PHeap& heap,
    const std::unordered_set<uint64_t>* skip_table_offsets) {
  auto root_result = heap.GetRoot(kCatalogRootName);
  if (!root_result.ok()) return root_result.status();
  auto catalog = std::unique_ptr<Catalog>(new Catalog(heap));
  catalog->meta_ = heap.Resolve<PCatalogMeta>(*root_result);
  catalog->table_offsets_ = alloc::PVector<uint64_t>(
      &heap.region(), &heap.allocator(),
      &catalog->meta_->table_meta_offsets);
  HYRISE_NV_RETURN_NOT_OK(
      catalog->BindAndAttachTables(skip_table_offsets));
  return catalog;
}

Status Catalog::BindAndAttachTables(
    const std::unordered_set<uint64_t>* skip_table_offsets) {
  HYRISE_NV_RETURN_NOT_OK(table_offsets_.Validate());
  tables_.clear();
  for (uint64_t i = 0; i < table_offsets_.size(); ++i) {
    const uint64_t off = table_offsets_.Get(i);
    if (skip_table_offsets != nullptr && skip_table_offsets->count(off)) {
      continue;
    }
    auto table_result = Table::Attach(*heap_, off);
    if (!table_result.ok()) return table_result.status();
    tables_.push_back(std::move(table_result).ValueUnsafe());
  }
  return Status::OK();
}

Result<Table*> Catalog::CreateTable(const std::string& name,
                                    const Schema& schema) {
  return RestoreTable(name, schema, meta_->next_table_id);
}

Result<Table*> Catalog::RestoreTable(const std::string& name,
                                     const Schema& schema,
                                     uint64_t table_id) {
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return Status::AlreadyExists("table '" + name + "' already exists");
    }
    if (table->id() == table_id) {
      return Status::AlreadyExists("table id already in use");
    }
  }
  alloc::IntentHandle publish_intent;
  auto meta_off_result =
      Table::Create(*heap_, name, table_id, schema, &publish_intent);
  if (!meta_off_result.ok()) return meta_off_result.status();

  // The catalog append is the durability point of the DDL: once the
  // offset is in the table list, the table exists across crashes.
  Status append_status = table_offsets_.Append(*meta_off_result);
  if (!append_status.ok()) {
    heap_->allocator().AbortIntent(publish_intent);
    return append_status;
  }
  heap_->allocator().CommitIntent(publish_intent);
  if (table_id + 1 > meta_->next_table_id) {
    heap_->region().AtomicPersist64(&meta_->next_table_id, table_id + 1);
  }

  auto table_result = Table::Attach(*heap_, *meta_off_result);
  if (!table_result.ok()) return table_result.status();
  tables_.push_back(std::move(table_result).ValueUnsafe());
  return tables_.back().get();
}

Result<Table*> Catalog::GetTableById(uint64_t table_id) const {
  for (const auto& table : tables_) {
    if (table->id() == table_id) return table.get();
  }
  return Status::NotFound("no table with id " + std::to_string(table_id));
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) return table.get();
  }
  return Status::NotFound("no table named '" + name + "'");
}

Status Catalog::RepairAfterCrash() {
  for (auto& table : tables_) {
    HYRISE_NV_RETURN_NOT_OK(table->RepairAfterCrash());
  }
  return Status::OK();
}

}  // namespace hyrise_nv::storage
