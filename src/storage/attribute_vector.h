#ifndef HYRISE_NV_STORAGE_ATTRIBUTE_VECTOR_H_
#define HYRISE_NV_STORAGE_ATTRIBUTE_VECTOR_H_

#include <cstdint>

#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// Read view over a main partition's bit-packed attribute vector: one
/// `bits`-wide value id per row, packed into persistent 64-bit words.
/// Built once per merge generation, immutable afterwards.
class PackedAttributeVector {
 public:
  PackedAttributeVector() = default;
  PackedAttributeVector(nvm::PmemRegion* region, alloc::PAllocator* alloc,
                        alloc::PVectorDesc* words_desc, uint64_t bits,
                        uint64_t row_count)
      : words_(region, alloc, words_desc),
        bits_(static_cast<uint8_t>(bits)),
        row_count_(row_count) {}

  Status Validate() const;

  ValueId Get(uint64_t row) const;

  uint64_t row_count() const { return row_count_; }
  uint8_t bits() const { return bits_; }

  /// Packs `count` value ids into a freshly formatted word vector with the
  /// given width. Merge-time builder: one bulk persist.
  static Status Build(alloc::PVector<uint64_t>& words, uint8_t bits,
                      const ValueId* ids, uint64_t count);

 private:
  alloc::PVector<uint64_t> words_;
  uint8_t bits_ = 1;
  uint64_t row_count_ = 0;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_ATTRIBUTE_VECTOR_H_
