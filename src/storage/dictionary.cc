#include "storage/dictionary.h"

#include <bit>
#include <cstring>

#include "common/macros.h"

namespace hyrise_nv::storage {

uint64_t EncodeNumeric(const Value& value, DataType type) {
  switch (type) {
    case DataType::kInt64:
      return static_cast<uint64_t>(std::get<int64_t>(value));
    case DataType::kDouble:
      return std::bit_cast<uint64_t>(std::get<double>(value));
    case DataType::kString:
      break;
  }
  HYRISE_NV_CHECK(false, "EncodeNumeric on string column");
  return 0;
}

Value DecodeNumeric(uint64_t bits, DataType type) {
  switch (type) {
    case DataType::kInt64:
      return Value(static_cast<int64_t>(bits));
    case DataType::kDouble:
      return Value(std::bit_cast<double>(bits));
    case DataType::kString:
      break;
  }
  HYRISE_NV_CHECK(false, "DecodeNumeric on string column");
  return Value(int64_t{0});
}

int CompareNumericEncoded(DataType type, uint64_t a, uint64_t b) {
  if (type == DataType::kInt64) {
    const auto ia = static_cast<int64_t>(a);
    const auto ib = static_cast<int64_t>(b);
    return ia < ib ? -1 : (ia > ib ? 1 : 0);
  }
  const double da = std::bit_cast<double>(a);
  const double db = std::bit_cast<double>(b);
  return da < db ? -1 : (da > db ? 1 : 0);
}

std::string_view BlobRead(const alloc::PVector<char>& blob,
                          uint64_t offset) {
  HYRISE_NV_DCHECK(offset + 4 <= blob.size(), "blob offset out of range");
  uint32_t len = 0;
  std::memcpy(&len, blob.data() + offset, 4);
  HYRISE_NV_DCHECK(offset + 4 + len <= blob.size(),
                   "blob entry out of range");
  return std::string_view(blob.data() + offset + 4, len);
}

Result<uint64_t> BlobAppend(alloc::PVector<char>& blob,
                            std::string_view text) {
  if (text.size() > UINT32_MAX) {
    return Status::InvalidArgument("string too long");
  }
  const uint64_t offset = blob.size();
  const uint32_t len = static_cast<uint32_t>(text.size());
  std::vector<char> entry(4 + text.size());
  std::memcpy(entry.data(), &len, 4);
  std::memcpy(entry.data() + 4, text.data(), text.size());
  HYRISE_NV_RETURN_NOT_OK(blob.BulkAppend(entry.data(), entry.size()));
  return offset;
}

// ---------------------------------------------------------------------------
// DeltaDictionary

DeltaDictionary::DeltaDictionary(DataType type, nvm::PmemRegion* region,
                                 alloc::PAllocator* alloc,
                                 PDeltaColumnMeta* meta)
    : type_(type),
      values_(region, alloc, &meta->dict_values),
      blob_(region, alloc, &meta->dict_blob) {}

void DeltaDictionary::Format(nvm::PmemRegion& region,
                             PDeltaColumnMeta* meta) {
  alloc::PVector<uint64_t>::Format(region, &meta->dict_values);
  alloc::PVector<char>::Format(region, &meta->dict_blob);
  alloc::PVector<uint32_t>::Format(region, &meta->attr);
}

Status DeltaDictionary::Attach() {
  HYRISE_NV_RETURN_NOT_OK(values_.Validate());
  HYRISE_NV_RETURN_NOT_OK(blob_.Validate());
  numeric_map_.clear();
  string_map_.clear();
  for (uint64_t id = 0; id < values_.size(); ++id) {
    if (type_ == DataType::kString) {
      const uint64_t off = values_.Get(id);
      if (off + 4 > blob_.size()) {
        return Status::Corruption("delta dictionary blob offset corrupt");
      }
      string_map_.emplace(std::string(BlobRead(blob_, off)),
                          static_cast<ValueId>(id));
    } else {
      numeric_map_.emplace(values_.Get(id), static_cast<ValueId>(id));
    }
  }
  return Status::OK();
}

Result<ValueId> DeltaDictionary::GetOrInsert(const Value& value) {
  if (values_.size() >= kInvalidValueId) {
    return Status::OutOfMemory("dictionary full");
  }
  if (type_ == DataType::kString) {
    const auto& text = std::get<std::string>(value);
    auto it = string_map_.find(text);
    if (it != string_map_.end()) return it->second;
    HYRISE_NV_ASSIGN_OR_RETURN(const uint64_t off, BlobAppend(blob_, text));
    const auto id = static_cast<ValueId>(values_.size());
    HYRISE_NV_RETURN_NOT_OK(values_.Append(off));
    string_map_.emplace(text, id);
    return id;
  }
  const uint64_t bits = EncodeNumeric(value, type_);
  auto it = numeric_map_.find(bits);
  if (it != numeric_map_.end()) return it->second;
  const auto id = static_cast<ValueId>(values_.size());
  HYRISE_NV_RETURN_NOT_OK(values_.Append(bits));
  numeric_map_.emplace(bits, id);
  return id;
}

ValueId DeltaDictionary::Lookup(const Value& value) const {
  if (type_ == DataType::kString) {
    auto it = string_map_.find(std::get<std::string>(value));
    return it == string_map_.end() ? kInvalidValueId : it->second;
  }
  auto it = numeric_map_.find(EncodeNumeric(value, type_));
  return it == numeric_map_.end() ? kInvalidValueId : it->second;
}

Value DeltaDictionary::GetValue(ValueId id) const {
  HYRISE_NV_DCHECK(id < values_.size(), "value id out of range");
  if (type_ == DataType::kString) {
    return Value(std::string(BlobRead(blob_, values_.Get(id))));
  }
  return DecodeNumeric(values_.Get(id), type_);
}

// ---------------------------------------------------------------------------
// MainDictionary

MainDictionary::MainDictionary(DataType type, nvm::PmemRegion* region,
                               alloc::PAllocator* alloc,
                               PMainColumnMeta* meta)
    : type_(type),
      values_(region, alloc, &meta->dict_values),
      blob_(region, alloc, &meta->dict_blob) {}

Status MainDictionary::Validate() const {
  HYRISE_NV_RETURN_NOT_OK(values_.Validate());
  return blob_.Validate();
}

Value MainDictionary::GetValue(ValueId id) const {
  HYRISE_NV_DCHECK(id < values_.size(), "value id out of range");
  if (type_ == DataType::kString) {
    return Value(std::string(BlobRead(blob_, values_.Get(id))));
  }
  return DecodeNumeric(values_.Get(id), type_);
}

int MainDictionary::CompareEntry(ValueId id, const Value& value) const {
  if (type_ == DataType::kString) {
    const std::string_view entry = BlobRead(blob_, values_.Get(id));
    return entry.compare(std::get<std::string>(value));
  }
  return CompareNumericEncoded(type_, values_.Get(id),
                               EncodeNumeric(value, type_));
}

ValueId MainDictionary::LowerBound(const Value& value) const {
  uint64_t lo = 0, hi = values_.size();
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (CompareEntry(static_cast<ValueId>(mid), value) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<ValueId>(lo);
}

ValueId MainDictionary::UpperBound(const Value& value) const {
  uint64_t lo = 0, hi = values_.size();
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (CompareEntry(static_cast<ValueId>(mid), value) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<ValueId>(lo);
}

ValueId MainDictionary::Find(const Value& value) const {
  const ValueId id = LowerBound(value);
  if (id < values_.size() && CompareEntry(id, value) == 0) return id;
  return kInvalidValueId;
}

}  // namespace hyrise_nv::storage
