#ifndef HYRISE_NV_STORAGE_MVCC_H_
#define HYRISE_NV_STORAGE_MVCC_H_

#include <cstdint>

#include "nvm/pmem_region.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// Snapshot-visibility of a row version (Hyrise insert-only MVCC).
///
/// Rules:
///  * An uncommitted insert (begin == ∞) is visible only to its owning
///    transaction — and not even to it once self-deleted (end != ∞).
///  * A committed version is visible iff begin <= snapshot < end.
///  * A committed row claimed by the *reading* transaction for deletion
///    (tid == my_tid) is already invisible to that transaction.
///
/// Stamps written by a crashed commit never become visible: the commit
/// protocol re-stamps from the persistent touch list on recovery (roll
/// forward) or never wrote a commit record (the begins stay ∞).
bool IsVisible(const MvccEntry& entry, Cid snapshot, Tid my_tid);

/// Attempts to claim `entry` for invalidation (delete / update-old-row) on
/// behalf of `my_tid`. `tid_is_active(t)` must return whether transaction
/// `t` is currently live; stale claims from crashed or finished
/// transactions are stolen. The claim is persisted. Returns
/// TransactionConflict if another live transaction holds the row, or if
/// the row is already deleted.
template <typename IsActiveFn>
Status ClaimForInvalidate(nvm::PmemRegion& region, MvccEntry* entry,
                          Tid my_tid, IsActiveFn&& tid_is_active) {
  const Tid current = __atomic_load_n(&entry->tid, __ATOMIC_ACQUIRE);
  if (current == my_tid) {
    return Status::OK();  // already claimed by us (idempotent)
  }
  if (current != kTidNone && tid_is_active(current)) {
    return Status::TransactionConflict("row claimed by live transaction " +
                                       std::to_string(current));
  }
  Tid expected = current;
  if (!__atomic_compare_exchange_n(&entry->tid, &expected, my_tid, false,
                                   __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE)) {
    return Status::TransactionConflict("row claim raced");
  }
  region.Persist(&entry->tid, sizeof(entry->tid));
  return Status::OK();
}

/// Releases a claim (abort path). Persisted.
void ReleaseClaim(nvm::PmemRegion& region, MvccEntry* entry, Tid my_tid);

/// Marks an own uncommitted insert as self-deleted (end = 0). Persisted.
void MarkSelfDeleted(nvm::PmemRegion& region, MvccEntry* entry);

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_MVCC_H_
