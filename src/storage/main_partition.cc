#include "storage/main_partition.h"

namespace hyrise_nv::storage {

MainColumn::MainColumn(DataType type, nvm::PmemRegion* region,
                       alloc::PAllocator* alloc, PMainColumnMeta* meta,
                       uint64_t row_count)
    : dict_(type, region, alloc, meta),
      attr_(region, alloc, &meta->attr_words, meta->bits, row_count) {}

void MainColumn::Format(nvm::PmemRegion& region, PMainColumnMeta* meta) {
  alloc::PVector<uint64_t>::Format(region, &meta->dict_values);
  alloc::PVector<char>::Format(region, &meta->dict_blob);
  alloc::PVector<uint64_t>::Format(region, &meta->attr_words);
  alloc::PVector<uint64_t>::Format(region, &meta->gk_offsets);
  alloc::PVector<uint64_t>::Format(region, &meta->gk_positions);
  meta->bits = 1;
  region.Persist(&meta->bits, sizeof(meta->bits));
}

Status MainColumn::Validate() const {
  HYRISE_NV_RETURN_NOT_OK(dict_.Validate());
  return attr_.Validate();
}

void MainPartition::Format(nvm::PmemRegion& region, PTableGroup* group,
                           uint64_t num_columns) {
  group->main_row_count = 0;
  region.Persist(&group->main_row_count, sizeof(group->main_row_count));
  alloc::PVector<MvccEntry>::Format(region, &group->main_mvcc);
  for (uint64_t c = 0; c < num_columns; ++c) {
    MainColumn::Format(region, group->main_col(c));
  }
}

Status MainPartition::Attach(const Schema& schema, nvm::PmemRegion* region,
                             alloc::PAllocator* alloc, PTableGroup* group) {
  const uint64_t ncols = schema.num_columns();
  row_count_ = group->main_row_count;
  mvcc_ = alloc::PVector<MvccEntry>(region, alloc, &group->main_mvcc);
  HYRISE_NV_RETURN_NOT_OK(mvcc_.Validate());
  if (mvcc_.size() != row_count_) {
    return Status::Corruption("main MVCC vector size mismatch");
  }
  columns_.clear();
  columns_.reserve(ncols);
  for (uint64_t c = 0; c < ncols; ++c) {
    columns_.emplace_back(schema.column(c).type, region, alloc,
                          group->main_col(c), row_count_);
    HYRISE_NV_RETURN_NOT_OK(columns_.back().Validate());
  }
  return Status::OK();
}

}  // namespace hyrise_nv::storage
