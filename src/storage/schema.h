#ifndef HYRISE_NV_STORAGE_SCHEMA_H_
#define HYRISE_NV_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// A column definition: name + data type.
struct ColumnDef {
  std::string name;
  DataType type;

  bool operator==(const ColumnDef&) const = default;
};

/// An ordered list of column definitions. Immutable once a table is
/// created; serialised into the NVM catalog and into checkpoints.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  static Result<Schema> Make(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Validates that `row` has one correctly-typed value per column.
  Status CheckRow(const std::vector<Value>& row) const;

  /// Binary serialisation (length-prefixed names). Deterministic.
  std::vector<uint8_t> Serialize() const;
  static Result<Schema> Deserialize(const uint8_t* data, size_t len);

  bool operator==(const Schema&) const = default;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_SCHEMA_H_
