#include "storage/mvcc.h"

#include "common/macros.h"

namespace hyrise_nv::storage {

bool IsVisible(const MvccEntry& entry, Cid snapshot, Tid my_tid) {
  if (entry.begin == kCidInfinity) {
    // Uncommitted insert: only the owner sees it, and only while it has
    // not self-deleted it (end stays ∞ until then).
    if (my_tid == kTidNone || entry.tid != my_tid) return false;
    return entry.end == kCidInfinity;
  }
  if (entry.begin > snapshot) return false;  // committed after snapshot
  if (my_tid != kTidNone && entry.tid == my_tid) {
    // We claimed this committed row for invalidation.
    return false;
  }
  if (entry.end != kCidInfinity && entry.end <= snapshot) {
    return false;  // deleted at or before snapshot
  }
  return true;
}

void ReleaseClaim(nvm::PmemRegion& region, MvccEntry* entry, Tid my_tid) {
  HYRISE_NV_DCHECK(entry->tid == my_tid, "releasing someone else's claim");
  (void)my_tid;
  region.AtomicPersist64(&entry->tid, kTidNone);
}

void MarkSelfDeleted(nvm::PmemRegion& region, MvccEntry* entry) {
  HYRISE_NV_DCHECK(entry->begin == kCidInfinity,
                   "self-delete only applies to uncommitted inserts");
  region.AtomicPersist64(&entry->end, 0);
}

}  // namespace hyrise_nv::storage
