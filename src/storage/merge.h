#ifndef HYRISE_NV_STORAGE_MERGE_H_
#define HYRISE_NV_STORAGE_MERGE_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace hyrise_nv::storage {

/// Outcome of one delta→main merge.
struct MergeStats {
  uint64_t main_rows_before = 0;
  uint64_t delta_rows_before = 0;
  uint64_t rows_after = 0;      // surviving rows in the new main
  uint64_t dropped_rows = 0;    // deleted / aborted versions retired
  double seconds = 0;
};

/// Merges the delta partition into a new main generation.
///
/// Preconditions: no active transactions (stop-the-world merge; the
/// engine's merge scheduler guarantees this by taking the global write
/// latch). `snapshot` must be the current commit watermark.
///
/// The new generation — merged sorted dictionaries, re-packed attribute
/// vectors, fresh MVCC entries, rebuilt group-key indexes, empty delta —
/// is built in fresh allocations and published with one atomic persisted
/// pointer swap, so a crash at any point leaves either the old or the new
/// generation fully intact. Rows whose delete committed at or before
/// `snapshot`, and insert versions that never committed (aborted or
/// crashed transactions), are retired.
Result<MergeStats> MergeTable(Table& table, Cid snapshot);

/// Builds the group-key CSR for `column` of the *current* main partition
/// from its attribute vector. Used by log recovery (index rebuild phase)
/// and when an index is created on a table that already has a main. The
/// column's group-key vectors must be empty.
Status BuildMainGroupKey(Table& table, uint64_t column);

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_MERGE_H_
