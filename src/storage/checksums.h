#ifndef HYRISE_NV_STORAGE_CHECKSUMS_H_
#define HYRISE_NV_STORAGE_CHECKSUMS_H_

#include <cstdint>

#include "alloc/pvector.h"
#include "common/crc32.h"
#include "nvm/pmem_region.h"
#include "storage/layout.h"

namespace hyrise_nv::storage {

/// Seal tags are 64-bit: a constant marker in the high half plus a masked
/// CRC-32C in the low half. The marker guarantees a seal is never 0, so 0
/// can always mean "unsealed" (the state every Format leaves behind).
inline uint64_t SealTag(uint32_t crc) {
  return (uint64_t{0x5EA1} << 32) | MaskCrc(crc);
}

/// CRC over a persistent vector: the committed size, then the committed
/// element bytes of the active buffer. Structurally invalid descriptors
/// (buffer out of range) contribute only their size — the structural
/// checks in recovery/verify.cc report those separately.
uint32_t CrcOfVectorContent(const nvm::PmemRegion& region,
                            const alloc::PVectorDesc& desc,
                            uint64_t elem_size, uint32_t seed = 0);

/// Seal over the descriptor fields of a PVectorDesc (not its content).
uint64_t ComputePVectorDescSeal(const alloc::PVectorDesc& desc);

/// Content seals for one main-partition column (dictionary + attribute
/// vector) and its group-key CSR. The main partition is immutable after
/// merge, so these are computed at merge time and stay valid across
/// crashes.
uint64_t ComputeMainDictSeal(const nvm::PmemRegion& region,
                             const PMainColumnMeta& col);
uint64_t ComputeMainAttrSeal(const nvm::PmemRegion& region,
                             const PMainColumnMeta& col);
uint64_t ComputeMainGkSeal(const nvm::PmemRegion& region,
                           const PMainColumnMeta& col);

/// Content seals for one delta-partition column. Only authoritative after
/// a clean shutdown (the delta mutates in place).
uint64_t ComputeDeltaDictSeal(const nvm::PmemRegion& region,
                              const PDeltaColumnMeta& col);
uint64_t ComputeDeltaAttrSeal(const nvm::PmemRegion& region,
                              const PDeltaColumnMeta& col);

/// Content seal over both MVCC vectors plus the main row count.
uint64_t ComputeGroupMvccSeal(const nvm::PmemRegion& region,
                              const PTableGroup& group);

/// Writes and persists the merge-time seals of one main column.
void SealMainColumn(nvm::PmemRegion& region, PMainColumnMeta* col);
/// Writes and persists the group-key seal of one main column (the CSR is
/// built after the column itself).
void SealMainGroupKey(nvm::PmemRegion& region, PMainColumnMeta* col);

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_CHECKSUMS_H_
