#include "storage/table.h"

#include <cstring>

namespace hyrise_nv::storage {

Result<uint64_t> Table::Create(alloc::PHeap& heap, const std::string& name,
                               uint64_t table_id, const Schema& schema,
                               alloc::IntentHandle* publish_intent) {
  if (name.empty() || name.size() >= PTableMeta::kMaxNameLen) {
    return Status::InvalidArgument("table name length out of range");
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table needs at least one column");
  }
  auto& region = heap.region();
  auto& alloc = heap.allocator();

  // Schema blob.
  const std::vector<uint8_t> schema_bytes = schema.Serialize();
  alloc::IntentHandle schema_intent;
  auto schema_off_result =
      alloc.AllocWithIntent(schema_bytes.size(), &schema_intent);
  if (!schema_off_result.ok()) return schema_off_result.status();
  const uint64_t schema_off = *schema_off_result;
  std::memcpy(region.base() + schema_off, schema_bytes.data(),
              schema_bytes.size());
  region.Persist(region.base() + schema_off, schema_bytes.size());

  // Group.
  const uint64_t ncols = schema.num_columns();
  alloc::IntentHandle group_intent;
  auto group_off_result =
      alloc.AllocWithIntent(PTableGroup::ByteSize(ncols), &group_intent);
  if (!group_off_result.ok()) {
    alloc.AbortIntent(schema_intent);
    return group_off_result.status();
  }
  const uint64_t group_off = *group_off_result;
  auto* group = heap.Resolve<PTableGroup>(group_off);
  std::memset(group, 0, PTableGroup::ByteSize(ncols));
  MainPartition::Format(region, group, ncols);
  DeltaPartition::Format(region, group, ncols);
  region.Persist(group, PTableGroup::ByteSize(ncols));

  // Meta (publishing it in the catalog is the caller's last step; the
  // intents cover us until then).
  alloc::IntentHandle meta_intent;
  auto meta_off_result =
      alloc.AllocWithIntent(sizeof(PTableMeta), &meta_intent);
  if (!meta_off_result.ok()) {
    alloc.AbortIntent(schema_intent);
    alloc.AbortIntent(group_intent);
    return meta_off_result.status();
  }
  const uint64_t meta_off = *meta_off_result;
  auto* meta = heap.Resolve<PTableMeta>(meta_off);
  std::memset(meta, 0, sizeof(PTableMeta));
  std::memcpy(meta->name, name.data(), name.size());
  meta->table_id = table_id;
  meta->num_columns = ncols;
  meta->schema_off = schema_off;
  meta->schema_len = schema_bytes.size();
  meta->group_off = group_off;
  region.Persist(meta, sizeof(PTableMeta));

  // Schema and group are referenced by the meta block; the meta block
  // itself stays intent-protected until the caller publishes it in the
  // catalog. (If a crash reclaims the meta, the schema and group blocks
  // leak — a bounded, DDL-only window; see DESIGN.md §8.)
  alloc.CommitIntent(schema_intent);
  alloc.CommitIntent(group_intent);
  *publish_intent = meta_intent;
  return meta_off;
}

Result<std::unique_ptr<Table>> Table::Attach(alloc::PHeap& heap,
                                             uint64_t meta_offset) {
  if (meta_offset == 0 || meta_offset >= heap.region().size()) {
    return Status::InvalidArgument("table meta offset out of range");
  }
  auto table = std::unique_ptr<Table>(new Table(heap, meta_offset));
  HYRISE_NV_RETURN_NOT_OK(table->BindHandles());
  return table;
}

Status Table::BindHandles() {
  meta_ = heap_->Resolve<PTableMeta>(meta_offset_);
  if (std::memchr(meta_->name, '\0', PTableMeta::kMaxNameLen) == nullptr) {
    return Status::Corruption("table name not terminated");
  }
  name_ = meta_->name;
  if (meta_->num_columns == 0 || meta_->num_columns > 4096) {
    return Status::Corruption("implausible column count");
  }
  if (meta_->schema_off == 0 ||
      meta_->schema_off + meta_->schema_len > heap_->region().size()) {
    return Status::Corruption("schema blob out of range");
  }
  auto schema_result = Schema::Deserialize(
      heap_->region().base() + meta_->schema_off, meta_->schema_len);
  if (!schema_result.ok()) return schema_result.status();
  schema_ = std::move(schema_result).ValueUnsafe();
  if (schema_.num_columns() != meta_->num_columns) {
    return Status::Corruption("schema column count mismatch");
  }
  return ReattachGroup();
}

Status Table::ReattachGroup() {
  if (meta_->group_off == 0 ||
      meta_->group_off + PTableGroup::ByteSize(meta_->num_columns) >
          heap_->region().size()) {
    return Status::Corruption("table group out of range");
  }
  group_ = heap_->Resolve<PTableGroup>(meta_->group_off);
  HYRISE_NV_RETURN_NOT_OK(main_.Attach(schema_, &heap_->region(),
                                       &heap_->allocator(), group_));
  return delta_.Attach(schema_, &heap_->region(), &heap_->allocator(),
                       group_);
}

Result<RowLocation> Table::AppendRow(const std::vector<Value>& row,
                                     Tid tid) {
  HYRISE_NV_RETURN_NOT_OK(schema_.CheckRow(row));
  auto row_result = delta_.AppendRow(row, tid);
  if (!row_result.ok()) return row_result.status();
  return RowLocation{false, *row_result};
}

Value Table::GetValue(RowLocation loc, size_t column) const {
  HYRISE_NV_DCHECK(column < schema_.num_columns(), "column out of range");
  return loc.in_main ? main_.column(column).GetValue(loc.row)
                     : delta_.column(column).GetValue(loc.row);
}

std::vector<Value> Table::GetRow(RowLocation loc) const {
  std::vector<Value> row;
  row.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    row.push_back(GetValue(loc, c));
  }
  return row;
}

uint64_t Table::CountVisible(Cid snapshot, Tid tid) const {
  uint64_t count = 0;
  ForEachVisibleRow(snapshot, tid, [&count](RowLocation) { ++count; });
  return count;
}

}  // namespace hyrise_nv::storage
