#include "storage/checksums.h"

#include <cstddef>

#include "alloc/pallocator.h"

namespace hyrise_nv::storage {

namespace {

/// True if the committed content of `desc` lies inside the heap.
bool ContentInBounds(const nvm::PmemRegion& region,
                     const alloc::PVectorDesc& desc, uint64_t elem_size) {
  const auto& slot = desc.slots[desc.version & 1];
  if (desc.size == 0) return true;
  if (slot.data < alloc::PAllocator::HeapBegin()) return false;
  if (desc.size > slot.capacity) return false;
  const uint64_t bytes = desc.size * elem_size;
  if (elem_size != 0 && bytes / elem_size != desc.size) return false;
  return slot.data + bytes >= slot.data &&
         slot.data + bytes <= region.size();
}

}  // namespace

uint32_t CrcOfVectorContent(const nvm::PmemRegion& region,
                            const alloc::PVectorDesc& desc,
                            uint64_t elem_size, uint32_t seed) {
  uint32_t crc = Crc32c(&desc.size, sizeof(desc.size), seed);
  if (desc.size == 0 || !ContentInBounds(region, desc, elem_size)) {
    return crc;
  }
  const auto& slot = desc.slots[desc.version & 1];
  return Crc32c(region.base() + slot.data, desc.size * elem_size, crc);
}

uint64_t ComputePVectorDescSeal(const alloc::PVectorDesc& desc) {
  return SealTag(
      Crc32c(&desc, offsetof(alloc::PVectorDesc, seal)));
}

uint64_t ComputeMainDictSeal(const nvm::PmemRegion& region,
                             const PMainColumnMeta& col) {
  uint32_t crc = CrcOfVectorContent(region, col.dict_values, 8);
  crc = CrcOfVectorContent(region, col.dict_blob, 1, crc);
  return SealTag(crc);
}

uint64_t ComputeMainAttrSeal(const nvm::PmemRegion& region,
                             const PMainColumnMeta& col) {
  uint32_t crc = Crc32c(&col.bits, sizeof(col.bits));
  crc = CrcOfVectorContent(region, col.attr_words, 8, crc);
  return SealTag(crc);
}

uint64_t ComputeMainGkSeal(const nvm::PmemRegion& region,
                           const PMainColumnMeta& col) {
  uint32_t crc = CrcOfVectorContent(region, col.gk_offsets, 8);
  crc = CrcOfVectorContent(region, col.gk_positions, 8, crc);
  return SealTag(crc);
}

uint64_t ComputeDeltaDictSeal(const nvm::PmemRegion& region,
                              const PDeltaColumnMeta& col) {
  uint32_t crc = CrcOfVectorContent(region, col.dict_values, 8);
  crc = CrcOfVectorContent(region, col.dict_blob, 1, crc);
  return SealTag(crc);
}

uint64_t ComputeDeltaAttrSeal(const nvm::PmemRegion& region,
                              const PDeltaColumnMeta& col) {
  return SealTag(CrcOfVectorContent(region, col.attr, 4));
}

uint64_t ComputeGroupMvccSeal(const nvm::PmemRegion& region,
                              const PTableGroup& group) {
  uint32_t crc =
      Crc32c(&group.main_row_count, sizeof(group.main_row_count));
  crc = CrcOfVectorContent(region, group.main_mvcc, sizeof(MvccEntry), crc);
  crc =
      CrcOfVectorContent(region, group.delta_mvcc, sizeof(MvccEntry), crc);
  return SealTag(crc);
}

void SealMainColumn(nvm::PmemRegion& region, PMainColumnMeta* col) {
  col->dict_seal = ComputeMainDictSeal(region, *col);
  col->attr_seal = ComputeMainAttrSeal(region, *col);
  region.Persist(&col->dict_seal, sizeof(uint64_t) * 2);
}

void SealMainGroupKey(nvm::PmemRegion& region, PMainColumnMeta* col) {
  col->gk_seal = ComputeMainGkSeal(region, *col);
  region.Persist(&col->gk_seal, sizeof(col->gk_seal));
}

}  // namespace hyrise_nv::storage
