#ifndef HYRISE_NV_STORAGE_TYPES_H_
#define HYRISE_NV_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>

namespace hyrise_nv::storage {

/// Column data types supported by the engine.
enum class DataType : uint32_t {
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* DataTypeName(DataType type);

/// A single cell value. Strings are owned copies; the storage layer
/// dictionary-encodes them on insert.
using Value = std::variant<int64_t, double, std::string>;

/// Whether `value`'s alternative matches `type`.
bool ValueMatchesType(const Value& value, DataType type);

/// Dictionary value id within a partition. Ids index the partition's
/// dictionary; main and delta dictionaries have independent id spaces.
using ValueId = uint32_t;
constexpr ValueId kInvalidValueId = UINT32_MAX;

/// Commit id (CID): global, monotonically increasing commit timestamp.
using Cid = uint64_t;
/// Transaction id (TID): unique per transaction, never reused across
/// restarts (allocated in persisted blocks).
using Tid = uint64_t;

constexpr Cid kCidInfinity = UINT64_MAX;
constexpr Tid kTidNone = 0;

/// Per-row multi-version metadata (Hyrise scheme). Lives on NVM; the
/// begin/end stamps plus the global commit watermark define visibility, so
/// recovery never needs to undo row payloads.
struct MvccEntry {
  Cid begin = kCidInfinity;  // first CID that sees the row
  Cid end = kCidInfinity;    // first CID that no longer sees it
  Tid tid = kTidNone;        // owning transaction while claimed
};
static_assert(sizeof(MvccEntry) == 24, "MvccEntry layout");

/// Identifies a row within a table: main partition rows and delta
/// partition rows are addressed separately.
struct RowLocation {
  bool in_main = false;
  uint64_t row = 0;

  bool operator==(const RowLocation&) const = default;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_TYPES_H_
