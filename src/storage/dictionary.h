#ifndef HYRISE_NV_STORAGE_DICTIONARY_H_
#define HYRISE_NV_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/layout.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// Bit-encoding of numeric values into the uint64 dictionary slots.
uint64_t EncodeNumeric(const Value& value, DataType type);
Value DecodeNumeric(uint64_t bits, DataType type);

/// Three-way comparison of two encoded numeric values of `type`.
int CompareNumericEncoded(DataType type, uint64_t a, uint64_t b);

/// Reads the length-prefixed string at `offset` in a blob vector.
std::string_view BlobRead(const alloc::PVector<char>& blob, uint64_t offset);

/// Appends a length-prefixed string to a blob vector; returns its offset.
Result<uint64_t> BlobAppend(alloc::PVector<char>& blob,
                            std::string_view text);

/// The delta partition's unsorted, append-only dictionary for one column.
///
/// Persistent state: the value vector (numeric bits, or blob offsets for
/// strings) and the string blob. The value→id dedup map is volatile and
/// rebuilt from the persistent vectors on restart (cost proportional to
/// the delta, not the database — see DESIGN.md §4.3).
class DeltaDictionary {
 public:
  DeltaDictionary() = default;
  DeltaDictionary(DataType type, nvm::PmemRegion* region,
                  alloc::PAllocator* alloc, PDeltaColumnMeta* meta);

  /// Formats empty persistent vectors for a fresh column.
  static void Format(nvm::PmemRegion& region, PDeltaColumnMeta* meta);

  /// Validates persistent state and rebuilds the volatile dedup map.
  Status Attach();

  /// Returns the id of `value`, inserting it if new. The insert persists
  /// the dictionary entry before returning.
  Result<ValueId> GetOrInsert(const Value& value);

  /// Id of `value` if present, else kInvalidValueId.
  ValueId Lookup(const Value& value) const;

  Value GetValue(ValueId id) const;

  uint64_t size() const { return values_.size(); }
  DataType type() const { return type_; }

 private:
  DataType type_ = DataType::kInt64;
  alloc::PVector<uint64_t> values_;
  alloc::PVector<char> blob_;
  std::unordered_map<uint64_t, ValueId> numeric_map_;
  std::unordered_map<std::string, ValueId> string_map_;
};

/// Read-only view of a main partition's sorted dictionary. Value ids are
/// positions in sorted order, which makes range predicates id-comparable.
class MainDictionary {
 public:
  MainDictionary() = default;
  MainDictionary(DataType type, nvm::PmemRegion* region,
                 alloc::PAllocator* alloc, PMainColumnMeta* meta);

  Status Validate() const;

  Value GetValue(ValueId id) const;

  /// Exact lookup by binary search; kInvalidValueId if absent.
  ValueId Find(const Value& value) const;

  /// First id whose value is >= `value` (== size() if none).
  ValueId LowerBound(const Value& value) const;
  /// First id whose value is > `value` (== size() if none).
  ValueId UpperBound(const Value& value) const;

  uint64_t size() const { return values_.size(); }
  DataType type() const { return type_; }

  /// Mutable accessors used only by the merge builder.
  alloc::PVector<uint64_t>& values() { return values_; }
  alloc::PVector<char>& blob() { return blob_; }
  const alloc::PVector<char>& blob() const { return blob_; }

 private:
  // Compares dictionary entry `id` against `value`; <0, 0, >0.
  int CompareEntry(ValueId id, const Value& value) const;

  DataType type_ = DataType::kInt64;
  alloc::PVector<uint64_t> values_;
  alloc::PVector<char> blob_;
};

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_DICTIONARY_H_
