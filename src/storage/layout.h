#ifndef HYRISE_NV_STORAGE_LAYOUT_H_
#define HYRISE_NV_STORAGE_LAYOUT_H_

#include <cstdint>

#include "alloc/pvector.h"
#include "storage/types.h"

namespace hyrise_nv::storage {

/// On-NVM metadata of one column's delta partition: unsorted dictionary
/// (values + string blob) and the unencoded value-id vector.
struct PDeltaColumnMeta {
  alloc::PVectorDesc dict_values;  // uint64: numeric bits or blob offsets
  alloc::PVectorDesc dict_blob;    // length-prefixed string payloads
  alloc::PVectorDesc attr;         // uint32 value ids, one per delta row
  uint64_t dict_seal;  // content seal over dict_values+dict_blob (0 = none)
  uint64_t attr_seal;  // content seal over attr (0 = none)
};

/// On-NVM metadata of one column's main partition: sorted dictionary and
/// bit-packed attribute vector, plus the group-key index (CSR layout).
struct PMainColumnMeta {
  alloc::PVectorDesc dict_values;  // sorted; uint64 bits or blob offsets
  alloc::PVectorDesc dict_blob;
  alloc::PVectorDesc attr_words;   // bit-packed value ids
  uint64_t bits;                   // width of packed ids
  alloc::PVectorDesc gk_offsets;   // |dict|+1 offsets into gk_positions
  alloc::PVectorDesc gk_positions; // row numbers grouped by value id
  // Content seals written at merge time (the main partition is immutable
  // after merge, so these are valid even after a crash). 0 = unsealed.
  uint64_t dict_seal;  // over dict_values + dict_blob content
  uint64_t attr_seal;  // over bits + attr_words content
  uint64_t gk_seal;    // over gk_offsets + gk_positions content
};

/// Maximum secondary indexes per table.
constexpr uint64_t kMaxIndexesPerTable = 4;

/// Secondary-index kinds.
enum PIndexKind : uint64_t {
  kIndexHash = 0,      // point lookups: persistent chaining hash
  kIndexSkipList = 1,  // ordered lookups: persistent skip list
};

/// Maximum tower height of the persistent skip list.
constexpr uint32_t kSkipListMaxHeight = 12;

/// One NVM-resident skip-list node (see index/pskiplist.h for the
/// operations). `key` holds the encoded numeric value for int64/double
/// columns, or an offset into the index's key blob for string columns.
struct PSkipNode {
  uint64_t key;
  uint64_t row;      // delta row number
  uint32_t height;   // tower height, 1..kSkipListMaxHeight
  uint32_t reserved;
  uint64_t next[kSkipListMaxHeight];  // node offsets; 0 = end
};

/// On-NVM metadata of one secondary index over the delta partition.
/// kIndexHash: `buckets` holds uint64 heads (1-based positions into
/// `entries`, 0 = empty), `entries` holds DeltaIndexEntry chains.
/// kIndexSkipList: `head_off` is the head node, `entries` doubles as the
/// key blob for string columns. The main-partition side of either kind is
/// the group-key CSR in PMainColumnMeta, rebuilt at merge.
struct PIndexMeta {
  uint64_t state;   // 0 = empty slot, 1 = active
  uint64_t kind;    // PIndexKind
  uint64_t column;  // indexed column
  uint64_t bucket_count;           // hash: power of two
  uint64_t head_off;               // skip list: head node offset
  alloc::PVectorDesc buckets;
  alloc::PVectorDesc entries;
  uint64_t content_seal;  // clean-shutdown seal over index content (0 = none)
};

/// One merge generation of a table: the immutable main partition, the
/// append-only delta partition, both MVCC vectors, and the secondary
/// index structures. Merge builds a complete new group and publishes it
/// with a single atomic pointer swap in PTableMeta, so a crash during
/// merge exposes the old or the new generation, never a mix (this also
/// atomically resets the delta-side indexes).
struct PTableGroup {
  uint64_t main_row_count;
  alloc::PVectorDesc main_mvcc;   // MvccEntry per main row
  alloc::PVectorDesc delta_mvcc;  // MvccEntry per delta row
  uint64_t mvcc_seal;  // clean-shutdown seal over both MVCC vectors
  PIndexMeta indexes[kMaxIndexesPerTable];
  // Trailing arrays: PMainColumnMeta[num_columns] then
  // PDeltaColumnMeta[num_columns].

  static uint64_t ByteSize(uint64_t num_columns) {
    return sizeof(PTableGroup) +
           num_columns * (sizeof(PMainColumnMeta) + sizeof(PDeltaColumnMeta));
  }

  PMainColumnMeta* main_col(uint64_t i) {
    auto* base = reinterpret_cast<uint8_t*>(this) + sizeof(PTableGroup);
    return reinterpret_cast<PMainColumnMeta*>(base) + i;
  }
  PDeltaColumnMeta* delta_col(uint64_t i, uint64_t num_columns) {
    auto* base = reinterpret_cast<uint8_t*>(this) + sizeof(PTableGroup) +
                 num_columns * sizeof(PMainColumnMeta);
    return reinterpret_cast<PDeltaColumnMeta*>(base) + i;
  }
};

/// Per-table root object. `group_off` is the merge swap point.
struct PTableMeta {
  static constexpr size_t kMaxNameLen = 64;
  char name[kMaxNameLen];
  uint64_t table_id;
  uint64_t num_columns;
  uint64_t schema_off;  // serialized Schema blob allocation
  uint64_t schema_len;
  uint64_t group_off;   // current PTableGroup (atomic swap at merge)
};

/// Catalog root object (referenced from the region root table under
/// "catalog"): the list of tables plus the table-id counter.
struct PCatalogMeta {
  uint64_t next_table_id;
  alloc::PVectorDesc table_meta_offsets;  // uint64 offsets of PTableMeta
};

// The persistent transaction-manager state (commit watermark, TID blocks,
// commit slots) is defined in txn/commit_table.h and registered under the
// region root "txn_state".

}  // namespace hyrise_nv::storage

#endif  // HYRISE_NV_STORAGE_LAYOUT_H_
