#include "storage/delta_partition.h"

namespace hyrise_nv::storage {

DeltaColumn::DeltaColumn(DataType type, nvm::PmemRegion* region,
                         alloc::PAllocator* alloc, PDeltaColumnMeta* meta)
    : dict_(type, region, alloc, meta),
      attr_(region, alloc, &meta->attr) {}

Status DeltaColumn::Attach() {
  HYRISE_NV_RETURN_NOT_OK(attr_.Validate());
  return dict_.Attach();
}

Status DeltaColumn::AppendValue(const Value& value) {
  // The dictionary append is fully fenced (recovery reads dictionaries
  // as-is); the attribute append only flushes — the row-level fence in
  // AppendRow orders it before the MVCC commit point, and recovery
  // truncates attribute tails to the MVCC row count.
  HYRISE_NV_ASSIGN_OR_RETURN(const ValueId id, dict_.GetOrInsert(value));
  return attr_.AppendUnfenced(id);
}

Value DeltaColumn::GetValue(uint64_t row) const {
  return dict_.GetValue(attr_.Get(row));
}

Status DeltaColumn::RestoreEncodedAt(uint64_t row, ValueId id) {
  if (id >= dict_.size()) {
    return Status::Corruption("restored id beyond dictionary");
  }
  attr_.Set(row, id);
  return Status::OK();
}

void DeltaPartition::Format(nvm::PmemRegion& region, PTableGroup* group,
                            uint64_t num_columns) {
  alloc::PVector<MvccEntry>::Format(region, &group->delta_mvcc);
  for (uint64_t c = 0; c < num_columns; ++c) {
    DeltaColumn::Format(region, group->delta_col(c, num_columns));
  }
}

Status DeltaPartition::Attach(const Schema& schema, nvm::PmemRegion* region,
                              alloc::PAllocator* alloc,
                              PTableGroup* group) {
  const uint64_t ncols = schema.num_columns();
  mvcc_ = alloc::PVector<MvccEntry>(region, alloc, &group->delta_mvcc);
  HYRISE_NV_RETURN_NOT_OK(mvcc_.Validate());
  columns_.clear();
  columns_.reserve(ncols);
  for (uint64_t c = 0; c < ncols; ++c) {
    columns_.emplace_back(schema.column(c).type, region, alloc,
                          group->delta_col(c, ncols));
    HYRISE_NV_RETURN_NOT_OK(columns_.back().Attach());
  }
  return Status::OK();
}

Result<uint64_t> DeltaPartition::AppendRow(const std::vector<Value>& row,
                                           Tid tid) {
  // Column values first (flushed, unfenced), one fence for the whole
  // row, then the MVCC entry — the atomic commit point for the row's
  // existence. A crash in between leaves longer attribute vectors,
  // repaired on recovery. This is the paper's CLWB-batching: n flushes,
  // one SFENCE per row instead of one per column.
  for (size_t c = 0; c < columns_.size(); ++c) {
    HYRISE_NV_RETURN_NOT_OK(columns_[c].AppendValue(row[c]));
  }
  mvcc_.region()->Fence();
  const uint64_t new_row = mvcc_.size();
  MvccEntry entry;
  entry.begin = kCidInfinity;
  entry.end = kCidInfinity;
  entry.tid = tid;
  HYRISE_NV_RETURN_NOT_OK(mvcc_.Append(entry));
  return new_row;
}

Result<uint64_t> DeltaPartition::AppendEncodedRow(
    const std::vector<ValueId>& ids, Tid tid) {
  if (ids.size() != columns_.size()) {
    return Status::InvalidArgument("encoded row arity mismatch");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (ids[c] >= columns_[c].dictionary().size()) {
      return Status::Corruption("encoded id beyond dictionary");
    }
    HYRISE_NV_RETURN_NOT_OK(columns_[c].AppendEncoded(ids[c]));
  }
  mvcc_.region()->Fence();
  const uint64_t new_row = mvcc_.size();
  MvccEntry entry;
  entry.begin = kCidInfinity;
  entry.end = kCidInfinity;
  entry.tid = tid;
  HYRISE_NV_RETURN_NOT_OK(mvcc_.Append(entry));
  return new_row;
}

Status DeltaPartition::ReservePlaceholderRows(
    const std::vector<MvccEntry>& entries) {
  if (entries.empty()) return Status::OK();
  for (auto& col : columns_) {
    HYRISE_NV_RETURN_NOT_OK(col.ReservePlaceholders(entries.size()));
  }
  mvcc_.region()->Fence();
  return mvcc_.BulkAppend(entries.data(), entries.size());
}

Status DeltaPartition::RepairTornInserts() {
  const uint64_t rows = mvcc_.size();
  for (auto& col : columns_) {
    if (col.attr_size() < rows) {
      return Status::Corruption(
          "delta attribute vector shorter than MVCC vector");
    }
    if (col.attr_size() > rows) {
      col.TruncateAttr(rows);
    }
  }
  return Status::OK();
}

}  // namespace hyrise_nv::storage
