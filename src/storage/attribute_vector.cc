#include "storage/attribute_vector.h"

#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"

namespace hyrise_nv::storage {

Status PackedAttributeVector::Validate() const {
  HYRISE_NV_RETURN_NOT_OK(words_.Validate());
  if (bits_ < 1 || bits_ > 32) {
    return Status::Corruption("packed vector bit width out of range");
  }
  if (words_.size() < bitpack::WordsFor(row_count_, bits_)) {
    return Status::Corruption("packed vector too short for row count");
  }
  return Status::OK();
}

ValueId PackedAttributeVector::Get(uint64_t row) const {
  HYRISE_NV_DCHECK(row < row_count_, "row out of range");
  return static_cast<ValueId>(bitpack::Get(words_.data(), row, bits_));
}

Status PackedAttributeVector::Build(alloc::PVector<uint64_t>& words,
                                    uint8_t bits, const ValueId* ids,
                                    uint64_t count) {
  HYRISE_NV_CHECK(words.size() == 0, "Build requires an empty word vector");
  const size_t num_words = bitpack::WordsFor(count, bits);
  if (num_words == 0) return Status::OK();
  std::vector<uint64_t> staging(num_words, 0);
  for (uint64_t i = 0; i < count; ++i) {
    bitpack::Set(staging.data(), i, bits, ids[i]);
  }
  return words.BulkAppend(staging.data(), staging.size());
}

}  // namespace hyrise_nv::storage
