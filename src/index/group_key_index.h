#ifndef HYRISE_NV_INDEX_GROUP_KEY_INDEX_H_
#define HYRISE_NV_INDEX_GROUP_KEY_INDEX_H_

#include <cstdint>

#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/layout.h"
#include "storage/types.h"

namespace hyrise_nv::index {

/// Read view over the group-key index of one main-partition column: a CSR
/// of row positions grouped by value id (offsets[|dict|+1] + positions).
/// Built during merge (storage/merge.cc), immutable per generation, and —
/// being NVM-resident — available immediately after restart without any
/// rebuild, which is a key ingredient of the paper's instant restart.
class GroupKeyIndex {
 public:
  GroupKeyIndex() = default;
  GroupKeyIndex(nvm::PmemRegion* region, alloc::PAllocator* alloc,
                storage::PMainColumnMeta* meta)
      : offsets_(region, alloc, &meta->gk_offsets),
        positions_(region, alloc, &meta->gk_positions) {}

  /// Whether the column has a built group-key index in this generation.
  bool present() const { return offsets_.size() > 0; }

  /// Validates CSR shape against the dictionary size and row count.
  Status Validate(uint64_t dict_size, uint64_t row_count) const;

  /// Calls `fn(row)` for every main row holding value id `id`.
  template <typename Fn>
  void ForEachRow(storage::ValueId id, Fn&& fn) const {
    const uint64_t begin = offsets_.Get(id);
    const uint64_t end = offsets_.Get(id + 1);
    for (uint64_t i = begin; i < end; ++i) {
      fn(positions_.Get(i));
    }
  }

  /// Calls `fn(row)` for every main row with value id in [lo, hi).
  template <typename Fn>
  void ForEachRowInIdRange(storage::ValueId lo, storage::ValueId hi,
                           Fn&& fn) const {
    if (lo >= hi) return;
    const uint64_t begin = offsets_.Get(lo);
    const uint64_t end = offsets_.Get(hi);
    for (uint64_t i = begin; i < end; ++i) {
      fn(positions_.Get(i));
    }
  }

  uint64_t RowCountFor(storage::ValueId id) const {
    return offsets_.Get(id + 1) - offsets_.Get(id);
  }

 private:
  alloc::PVector<uint64_t> offsets_;
  alloc::PVector<uint64_t> positions_;
};

}  // namespace hyrise_nv::index

#endif  // HYRISE_NV_INDEX_GROUP_KEY_INDEX_H_
