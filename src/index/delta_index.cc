#include "index/delta_index.h"

#include <string>

#include "storage/dictionary.h"

namespace hyrise_nv::index {

uint64_t HashValue(const storage::Value& value, storage::DataType type) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  auto mix_bytes = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;  // FNV prime
    }
  };
  if (type == storage::DataType::kString) {
    const auto& s = std::get<std::string>(value);
    mix_bytes(s.data(), s.size());
  } else {
    const uint64_t bits = storage::EncodeNumeric(value, type);
    mix_bytes(&bits, sizeof(bits));
  }
  // splitmix64 finaliser for avalanche.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

DeltaIndex::DeltaIndex(nvm::PmemRegion* region, alloc::PAllocator* alloc,
                       storage::PIndexMeta* meta)
    : region_(region),
      meta_(meta),
      buckets_(region, alloc, &meta->buckets),
      entries_(region, alloc, &meta->entries) {}

Status DeltaIndex::Create(nvm::PmemRegion& region, alloc::PAllocator& alloc,
                          storage::PIndexMeta* meta, uint64_t column,
                          uint64_t bucket_count) {
  if (bucket_count == 0 || (bucket_count & (bucket_count - 1)) != 0) {
    return Status::InvalidArgument("bucket count must be a power of two");
  }
  if (meta->state != 0) {
    return Status::AlreadyExists("index slot already active");
  }
  meta->column = column;
  meta->bucket_count = bucket_count;
  alloc::PVector<uint64_t>::Format(region, &meta->buckets);
  alloc::PVector<DeltaIndexEntry>::Format(region, &meta->entries);
  alloc::PVector<uint64_t> buckets(&region, &alloc, &meta->buckets);
  HYRISE_NV_RETURN_NOT_OK(buckets.AppendFill(0, bucket_count));
  region.Persist(meta, sizeof(storage::PIndexMeta));
  // Activating the slot last makes index creation crash-atomic.
  region.AtomicPersist64(&meta->state, 1);
  return Status::OK();
}

Status DeltaIndex::Attach() {
  if (meta_->state != 1) {
    return Status::InvalidArgument("attaching an inactive index slot");
  }
  if (meta_->bucket_count == 0 ||
      (meta_->bucket_count & (meta_->bucket_count - 1)) != 0) {
    return Status::Corruption("index bucket count corrupt");
  }
  HYRISE_NV_RETURN_NOT_OK(buckets_.Validate());
  HYRISE_NV_RETURN_NOT_OK(entries_.Validate());
  if (buckets_.size() != meta_->bucket_count) {
    return Status::Corruption("index bucket vector size mismatch");
  }
  // Bucket heads and chains must stay within the entry vector.
  for (uint64_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_.Get(b) > entries_.size()) {
      return Status::Corruption("index bucket head out of range");
    }
  }
  return Status::OK();
}

Status DeltaIndex::Insert(uint64_t hash, uint64_t row) {
  const uint64_t bucket = hash & (meta_->bucket_count - 1);
  DeltaIndexEntry entry;
  entry.hash = hash;
  entry.row = row;
  entry.next = buckets_.Get(bucket);
  // Durable entry first, then the atomic bucket-head publish.
  HYRISE_NV_RETURN_NOT_OK(entries_.Append(entry));
  region_->AtomicPersist64(buckets_.data() + bucket, entries_.size());
  return Status::OK();
}

}  // namespace hyrise_nv::index
