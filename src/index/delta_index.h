#ifndef HYRISE_NV_INDEX_DELTA_INDEX_H_
#define HYRISE_NV_INDEX_DELTA_INDEX_H_

#include <cstdint>

#include "alloc/pvector.h"
#include "common/status.h"
#include "storage/layout.h"
#include "storage/types.h"

namespace hyrise_nv::index {

/// Stable 64-bit hash of a value, identical across restarts (the hash is
/// persisted inside index entries). FNV-1a with a splitmix finaliser.
uint64_t HashValue(const storage::Value& value, storage::DataType type);

/// One chain node of the persistent delta hash index.
struct DeltaIndexEntry {
  uint64_t hash;  // full value hash (collisions re-checked by the reader)
  uint64_t row;   // delta row number
  uint64_t next;  // 1-based position of the next entry; 0 = end
};
static_assert(sizeof(DeltaIndexEntry) == 24, "entry layout");

/// NVM-resident chaining hash index over one column of the delta
/// partition (the multi-version index structure of DESIGN.md §4.3's delta
/// side; the main side is the group-key CSR rebuilt at merge).
///
/// Crash consistency: Insert appends the entry (durable via the entry
/// vector's size bump) and then publishes it with a single atomic persist
/// of the bucket head. A crash in between leaves an orphan entry that no
/// bucket references — harmless, and retired at the next merge.
class DeltaIndex {
 public:
  DeltaIndex() = default;
  DeltaIndex(nvm::PmemRegion* region, alloc::PAllocator* alloc,
             storage::PIndexMeta* meta);

  /// Formats a fresh index over `column` into a free PIndexMeta slot.
  static Status Create(nvm::PmemRegion& region, alloc::PAllocator& alloc,
                       storage::PIndexMeta* meta, uint64_t column,
                       uint64_t bucket_count);

  /// Validates persistent state after restart.
  Status Attach();

  uint64_t column() const { return meta_->column; }
  uint64_t entry_count() const { return entries_.size(); }

  /// Indexes `row` under `hash`.
  Status Insert(uint64_t hash, uint64_t row);

  /// Calls `fn(row)` for every entry whose hash equals `hash`. The caller
  /// re-checks actual value equality and row visibility.
  template <typename Fn>
  void ForEachCandidate(uint64_t hash, Fn&& fn) const {
    const uint64_t bucket = hash & (meta_->bucket_count - 1);
    uint64_t pos = buckets_.Get(bucket);  // 1-based
    while (pos != 0) {
      const DeltaIndexEntry& entry = entries_.Get(pos - 1);
      if (entry.hash == hash) fn(entry.row);
      pos = entry.next;
    }
  }

 private:
  nvm::PmemRegion* region_ = nullptr;
  storage::PIndexMeta* meta_ = nullptr;
  alloc::PVector<uint64_t> buckets_;
  alloc::PVector<DeltaIndexEntry> entries_;
};

}  // namespace hyrise_nv::index

#endif  // HYRISE_NV_INDEX_DELTA_INDEX_H_
