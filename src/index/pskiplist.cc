#include "index/pskiplist.h"

#include <cstring>

#include "storage/dictionary.h"

namespace hyrise_nv::index {

using storage::DataType;
using storage::Value;

PSkipList::PSkipList(DataType type, alloc::PHeap* heap,
                     storage::PIndexMeta* meta)
    : type_(type),
      heap_(heap),
      meta_(meta),
      blob_(&heap->region(), &heap->allocator(), &meta->entries) {}

Status PSkipList::Create(DataType type, alloc::PHeap& heap,
                         storage::PIndexMeta* meta, uint64_t column) {
  if (meta->state != 0) {
    return Status::AlreadyExists("index slot already active");
  }
  meta->kind = storage::kIndexSkipList;
  meta->column = column;
  meta->bucket_count = 0;
  alloc::PVector<uint64_t>::Format(heap.region(), &meta->buckets);
  alloc::PVector<char>::Format(heap.region(), &meta->entries);

  alloc::IntentHandle intent;
  auto head_result =
      heap.allocator().AllocWithIntent(sizeof(PSkipNode), &intent);
  if (!head_result.ok()) return head_result.status();
  auto* head = heap.Resolve<PSkipNode>(*head_result);
  std::memset(head, 0, sizeof(PSkipNode));
  head->height = kSkipListMaxHeight;
  heap.region().Persist(head, sizeof(PSkipNode));
  meta->head_off = *head_result;
  heap.region().Persist(meta, sizeof(storage::PIndexMeta));
  // Activating the slot publishes the head (and retires the intent).
  heap.region().AtomicPersist64(&meta->state, 1);
  heap.allocator().CommitIntent(intent);
  (void)type;
  return Status::OK();
}

Status PSkipList::Attach() {
  if (meta_->state != 1 || meta_->kind != storage::kIndexSkipList) {
    return Status::InvalidArgument("not an active skip-list slot");
  }
  if (meta_->head_off == 0 ||
      meta_->head_off + sizeof(PSkipNode) > heap_->region().size()) {
    return Status::Corruption("skip-list head out of range");
  }
  HYRISE_NV_RETURN_NOT_OK(blob_.Validate());
  const PSkipNode* head = NodeAt(meta_->head_off);
  if (head->height != kSkipListMaxHeight) {
    return Status::Corruption("skip-list head corrupt");
  }
  // Recount entries (cheap: one level-0 walk over the delta-sized list)
  // and bound-check every node on the way.
  entry_count_ = 0;
  uint64_t off = head->next[0];
  while (off != 0) {
    if (off + sizeof(PSkipNode) > heap_->region().size()) {
      return Status::Corruption("skip-list node out of range");
    }
    const PSkipNode* node = NodeAt(off);
    if (node->height == 0 || node->height > kSkipListMaxHeight) {
      return Status::Corruption("skip-list node height corrupt");
    }
    ++entry_count_;
    off = node->next[0];
  }
  return Status::OK();
}

int PSkipList::CompareKeyToValue(uint64_t key, const Value& value) const {
  if (type_ == DataType::kString) {
    const std::string_view stored = storage::BlobRead(blob_, key);
    return stored.compare(std::get<std::string>(value));
  }
  return storage::CompareNumericEncoded(
      type_, key, storage::EncodeNumeric(value, type_));
}

uint64_t PSkipList::PeekKey(const Value& value) const {
  return type_ == DataType::kString ? 0
                                    : storage::EncodeNumeric(value, type_);
}

uint64_t PSkipList::FindFirstAtLeast(uint64_t /*key_bits*/,
                                     const Value& value) const {
  const PSkipNode* node = NodeAt(meta_->head_off);
  for (int level = kSkipListMaxHeight - 1; level >= 0; --level) {
    uint64_t next_off = node->next[level];
    while (next_off != 0 &&
           CompareKeyToValue(NodeAt(next_off)->key, value) < 0) {
      node = NodeAt(next_off);
      next_off = node->next[level];
    }
  }
  return node->next[0];
}

Status PSkipList::Insert(const Value& value, uint64_t row) {
  // Encode the key (string keys go into the index's persistent blob).
  uint64_t key;
  if (type_ == DataType::kString) {
    auto off_result =
        storage::BlobAppend(blob_, std::get<std::string>(value));
    if (!off_result.ok()) return off_result.status();
    key = *off_result;
  } else {
    key = storage::EncodeNumeric(value, type_);
  }

  // Collect predecessors per level.
  uint64_t preds[kSkipListMaxHeight];
  PSkipNode* node = NodeAt(meta_->head_off);
  uint64_t node_off = meta_->head_off;
  for (int level = kSkipListMaxHeight - 1; level >= 0; --level) {
    uint64_t next_off = node->next[level];
    while (next_off != 0 &&
           CompareKeyToValue(NodeAt(next_off)->key, value) < 0) {
      node_off = next_off;
      node = NodeAt(node_off);
      next_off = node->next[level];
    }
    preds[level] = node_off;
  }

  // Random tower height (geometric, p = 1/2).
  uint32_t height = 1;
  while (height < kSkipListMaxHeight && (rng_.Next() & 1) != 0) ++height;

  // Write the node fully, persist it, then publish bottom-up. The
  // level-0 link is the durability point; upper links are best-effort.
  alloc::IntentHandle intent;
  auto alloc_result =
      heap_->allocator().AllocWithIntent(sizeof(PSkipNode), &intent);
  if (!alloc_result.ok()) return alloc_result.status();
  const uint64_t new_off = *alloc_result;
  auto* new_node = heap_->Resolve<PSkipNode>(new_off);
  std::memset(new_node, 0, sizeof(PSkipNode));
  new_node->key = key;
  new_node->row = row;
  new_node->height = height;
  for (uint32_t level = 0; level < height; ++level) {
    new_node->next[level] = NodeAt(preds[level])->next[level];
  }
  heap_->region().Persist(new_node, sizeof(PSkipNode));

  heap_->region().AtomicPersist64(&NodeAt(preds[0])->next[0], new_off);
  heap_->allocator().CommitIntent(intent);
  for (uint32_t level = 1; level < height; ++level) {
    heap_->region().AtomicPersist64(&NodeAt(preds[level])->next[level],
                                    new_off);
  }
  ++entry_count_;
  return Status::OK();
}

}  // namespace hyrise_nv::index
