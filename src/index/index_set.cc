#include "index/index_set.h"

namespace hyrise_nv::index {

namespace {
constexpr uint64_t kDefaultBuckets = 1024;
}

Status IndexSet::BindSlot(storage::PIndexMeta* meta) {
  auto* group = table_->group();
  auto& heap = table_->heap();
  if (meta->column >= table_->schema().num_columns()) {
    return Status::Corruption("index slot references bad column");
  }
  const auto column = static_cast<size_t>(meta->column);
  const storage::DataType type = table_->schema().column(column).type;
  BoundIndex bound;
  bound.column = column;
  bound.kind = static_cast<storage::PIndexKind>(meta->kind);
  bound.group_key =
      GroupKeyIndex(&heap.region(), &heap.allocator(),
                    group->main_col(meta->column));
  HYRISE_NV_RETURN_NOT_OK(bound.group_key.Validate(
      table_->main().column(column).dictionary().size(),
      table_->main_row_count()));
  if (bound.kind == storage::kIndexSkipList) {
    bound.skip_list = PSkipList(type, &heap, meta);
    HYRISE_NV_RETURN_NOT_OK(bound.skip_list.Attach());
  } else {
    bound.delta_hash = DeltaIndex(&heap.region(), &heap.allocator(), meta);
    HYRISE_NV_RETURN_NOT_OK(bound.delta_hash.Attach());
  }
  bound_.push_back(std::move(bound));
  return Status::OK();
}

Status IndexSet::Attach() {
  bound_.clear();
  auto* group = table_->group();
  for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
    if (group->indexes[s].state != 1) continue;
    HYRISE_NV_RETURN_NOT_OK(BindSlot(&group->indexes[s]));
  }
  return Status::OK();
}

bool IndexSet::HasIndex(size_t column) const {
  return FindBound(column) != nullptr;
}

bool IndexSet::HasOrderedIndex(size_t column) const {
  const BoundIndex* bound = FindBound(column);
  return bound != nullptr && bound->kind == storage::kIndexSkipList;
}

Status IndexSet::CreateIndexOfKind(size_t column,
                                   storage::PIndexKind kind) {
  if (column >= table_->schema().num_columns()) {
    return Status::InvalidArgument("column out of range");
  }
  if (HasIndex(column)) {
    return Status::AlreadyExists("column already indexed");
  }
  auto* group = table_->group();
  auto& heap = table_->heap();
  storage::PIndexMeta* slot = nullptr;
  for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
    if (group->indexes[s].state == 0) {
      slot = &group->indexes[s];
      break;
    }
  }
  if (slot == nullptr) {
    return Status::OutOfMemory("all index slots in use");
  }
  const storage::DataType type = table_->schema().column(column).type;
  if (kind == storage::kIndexSkipList) {
    HYRISE_NV_RETURN_NOT_OK(PSkipList::Create(type, heap, slot, column));
  } else {
    HYRISE_NV_RETURN_NOT_OK(DeltaIndex::Create(
        heap.region(), heap.allocator(), slot, column, kDefaultBuckets));
  }
  HYRISE_NV_RETURN_NOT_OK(BindSlot(slot));

  // Backfill existing delta rows.
  BoundIndex& bound = bound_.back();
  const auto& delta_col = table_->delta().column(column);
  for (uint64_t row = 0; row < table_->delta_row_count(); ++row) {
    const storage::Value value = delta_col.GetValue(row);
    if (kind == storage::kIndexSkipList) {
      HYRISE_NV_RETURN_NOT_OK(bound.skip_list.Insert(value, row));
    } else {
      HYRISE_NV_RETURN_NOT_OK(
          bound.delta_hash.Insert(HashValue(value, type), row));
    }
  }
  return Status::OK();
}

Status IndexSet::OnInsert(const std::vector<storage::Value>& row,
                          uint64_t delta_row) {
  for (auto& bound : bound_) {
    const storage::DataType type =
        table_->schema().column(bound.column).type;
    if (bound.kind == storage::kIndexSkipList) {
      HYRISE_NV_RETURN_NOT_OK(
          bound.skip_list.Insert(row[bound.column], delta_row));
    } else {
      HYRISE_NV_RETURN_NOT_OK(bound.delta_hash.Insert(
          HashValue(row[bound.column], type), delta_row));
    }
  }
  return Status::OK();
}

}  // namespace hyrise_nv::index
