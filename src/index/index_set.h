#ifndef HYRISE_NV_INDEX_INDEX_SET_H_
#define HYRISE_NV_INDEX_INDEX_SET_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "index/delta_index.h"
#include "index/group_key_index.h"
#include "index/pskiplist.h"
#include "storage/table.h"

namespace hyrise_nv::index {

/// The secondary indexes of one table generation: per indexed column, a
/// persistent delta-side structure (hash for point lookups or skip list
/// for ordered lookups) and — after the first merge — a group-key index
/// over the main. Handles are volatile; re-Attach after a restart or a
/// merge swap.
class IndexSet {
 public:
  explicit IndexSet(storage::Table* table) : table_(table) {}

  /// Binds handles to every active index slot of the current group.
  Status Attach();

  /// Creates a hash index on `column` (point lookups; the main-side
  /// group-key index materialises at the next merge). Backfills existing
  /// delta rows.
  Status CreateIndex(size_t column) {
    return CreateIndexOfKind(column, storage::kIndexHash);
  }

  /// Creates an ordered (skip-list) index on `column`: equality *and*
  /// range lookups on the delta. Backfills existing delta rows.
  Status CreateOrderedIndex(size_t column) {
    return CreateIndexOfKind(column, storage::kIndexSkipList);
  }

  Status CreateIndexOfKind(size_t column, storage::PIndexKind kind);

  /// Whether `column` has any index.
  bool HasIndex(size_t column) const;
  /// Whether `column` has an ordered index.
  bool HasOrderedIndex(size_t column) const;

  /// Must be called after every delta insert, with the inserted values.
  Status OnInsert(const std::vector<storage::Value>& row, uint64_t delta_row);

  /// Calls `fn(RowLocation)` for every *candidate* row whose `column`
  /// equals `value` (group-key or attribute scan on main; hash or skip
  /// list on delta). The caller filters by MVCC visibility; equality is
  /// exact.
  template <typename Fn>
  Status ForEachEqualCandidate(size_t column, const storage::Value& value,
                               Fn&& fn) const {
    const BoundIndex* bound = FindBound(column);
    if (bound == nullptr) {
      return Status::NotFound("no index on column " +
                              std::to_string(column));
    }
    ForEachMainEqual(*bound, column, value, fn);
    if (bound->kind == storage::kIndexSkipList) {
      bound->skip_list.ForEachEqual(value, [&fn](uint64_t row) {
        fn(storage::RowLocation{false, row});
      });
      return Status::OK();
    }
    const storage::DataType type = table_->schema().column(column).type;
    const auto& delta_col = table_->delta().column(column);
    const storage::ValueId delta_id = delta_col.dictionary().Lookup(value);
    bound->delta_hash.ForEachCandidate(
        HashValue(value, type), [&](uint64_t row) {
          if (delta_id != storage::kInvalidValueId &&
              delta_col.AttrAt(row) == delta_id) {
            fn(storage::RowLocation{false, row});
          }
        });
    return Status::OK();
  }

  /// Calls `fn(RowLocation)` for candidates with lo <= column <= hi.
  /// Requires an ordered index. Main side: sorted-dictionary id range
  /// through the group-key CSR (or packed-id scan pre-merge); delta side:
  /// skip-list range walk.
  template <typename Fn>
  Status ForEachRangeCandidate(size_t column, const storage::Value& lo,
                               const storage::Value& hi, Fn&& fn) const {
    const BoundIndex* bound = FindBound(column);
    if (bound == nullptr || bound->kind != storage::kIndexSkipList) {
      return Status::NotFound("no ordered index on column " +
                              std::to_string(column));
    }
    const auto& main_col = table_->main().column(column);
    const storage::ValueId lo_id = main_col.dictionary().LowerBound(lo);
    const storage::ValueId hi_id = main_col.dictionary().UpperBound(hi);
    if (lo_id < hi_id) {
      if (bound->group_key.present()) {
        bound->group_key.ForEachRowInIdRange(lo_id, hi_id,
                                             [&fn](uint64_t row) {
                                               fn(storage::RowLocation{
                                                   true, row});
                                             });
      } else {
        const uint64_t rows = table_->main_row_count();
        for (uint64_t r = 0; r < rows; ++r) {
          const storage::ValueId id = main_col.AttrAt(r);
          if (id >= lo_id && id < hi_id) {
            fn(storage::RowLocation{true, r});
          }
        }
      }
    }
    bound->skip_list.ForEachInRange(lo, hi, [&fn](uint64_t row) {
      fn(storage::RowLocation{false, row});
    });
    return Status::OK();
  }

  size_t num_indexes() const { return bound_.size(); }

 private:
  struct BoundIndex {
    size_t column;
    storage::PIndexKind kind;
    DeltaIndex delta_hash;   // kIndexHash
    PSkipList skip_list;     // kIndexSkipList
    GroupKeyIndex group_key;
  };

  template <typename Fn>
  void ForEachMainEqual(const BoundIndex& bound, size_t column,
                        const storage::Value& value, Fn&& fn) const {
    const auto& main_col = table_->main().column(column);
    const storage::ValueId main_id = main_col.dictionary().Find(value);
    if (main_id == storage::kInvalidValueId) return;
    if (bound.group_key.present()) {
      bound.group_key.ForEachRow(main_id, [&fn](uint64_t row) {
        fn(storage::RowLocation{true, row});
      });
      return;
    }
    const uint64_t rows = table_->main_row_count();
    for (uint64_t r = 0; r < rows; ++r) {
      if (main_col.AttrAt(r) == main_id) {
        fn(storage::RowLocation{true, r});
      }
    }
  }

  const BoundIndex* FindBound(size_t column) const {
    for (const auto& b : bound_) {
      if (b.column == column) return &b;
    }
    return nullptr;
  }

  Status BindSlot(storage::PIndexMeta* meta);

  storage::Table* table_;
  std::vector<BoundIndex> bound_;
};

}  // namespace hyrise_nv::index

#endif  // HYRISE_NV_INDEX_INDEX_SET_H_
