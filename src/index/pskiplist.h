#ifndef HYRISE_NV_INDEX_PSKIPLIST_H_
#define HYRISE_NV_INDEX_PSKIPLIST_H_

#include <cstdint>

#include "alloc/pheap.h"
#include "alloc/pvector.h"
#include "common/random.h"
#include "common/status.h"
#include "storage/layout.h"
#include "storage/types.h"

namespace hyrise_nv::index {

using storage::kSkipListMaxHeight;
using storage::PSkipNode;

/// Ordered persistent index over one delta column (the paper's
/// "multi-version tree structure on NVM": ordered, durable in place,
/// usable immediately after restart with no rebuild).
///
/// Crash consistency: a node is fully written and persisted before it is
/// published by a single atomic persist of the level-0 predecessor link.
/// Upper-level links follow best-effort — a crash may leave a node
/// reachable only at lower levels, which affects search constants, never
/// correctness (searches always terminate through level 0).
class PSkipList {
 public:
  PSkipList() = default;
  PSkipList(storage::DataType type, alloc::PHeap* heap,
            storage::PIndexMeta* meta);

  /// Formats a fresh skip list (head node + empty blob) into `meta` and
  /// activates the slot.
  static Status Create(storage::DataType type, alloc::PHeap& heap,
                       storage::PIndexMeta* meta, uint64_t column);

  /// Validates persistent state after restart.
  Status Attach();

  /// Indexes `row` under `value`.
  Status Insert(const storage::Value& value, uint64_t row);

  /// Calls `fn(row)` for every entry with lo <= key <= hi, in key order.
  template <typename Fn>
  void ForEachInRange(const storage::Value& lo, const storage::Value& hi,
                      Fn&& fn) const {
    const uint64_t lo_key = PeekKey(lo);
    uint64_t node_off = FindFirstAtLeast(lo_key, lo);
    while (node_off != 0) {
      const PSkipNode* node = NodeAt(node_off);
      if (CompareKeyToValue(node->key, hi) > 0) break;
      fn(node->row);
      node_off = node->next[0];
    }
  }

  /// Calls `fn(row)` for every entry equal to `value`.
  template <typename Fn>
  void ForEachEqual(const storage::Value& value, Fn&& fn) const {
    ForEachInRange(value, value, fn);
  }

  uint64_t entry_count() const { return entry_count_; }
  uint64_t column() const { return meta_->column; }

 private:
  PSkipNode* NodeAt(uint64_t offset) const {
    return reinterpret_cast<PSkipNode*>(heap_->region().base() + offset);
  }

  /// Three-way compare of a stored key against a query value.
  int CompareKeyToValue(uint64_t key, const storage::Value& value) const;

  /// For numeric columns, the encoded query key (unused for strings).
  uint64_t PeekKey(const storage::Value& value) const;

  /// Offset of the first node with key >= value (0 if none).
  uint64_t FindFirstAtLeast(uint64_t key_bits,
                            const storage::Value& value) const;

  storage::DataType type_ = storage::DataType::kInt64;
  alloc::PHeap* heap_ = nullptr;
  storage::PIndexMeta* meta_ = nullptr;
  alloc::PVector<char> blob_;  // string keys (meta->entries)
  Rng rng_{0x5EEDull};
  uint64_t entry_count_ = 0;  // volatile; recounted on Attach
};

}  // namespace hyrise_nv::index

#endif  // HYRISE_NV_INDEX_PSKIPLIST_H_
