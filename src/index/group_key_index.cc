#include "index/group_key_index.h"

namespace hyrise_nv::index {

Status GroupKeyIndex::Validate(uint64_t dict_size,
                               uint64_t row_count) const {
  HYRISE_NV_RETURN_NOT_OK(offsets_.Validate());
  HYRISE_NV_RETURN_NOT_OK(positions_.Validate());
  if (!present()) return Status::OK();
  if (offsets_.size() != dict_size + 1) {
    return Status::Corruption("group-key offsets size mismatch");
  }
  if (positions_.size() != row_count) {
    return Status::Corruption("group-key positions size mismatch");
  }
  if (offsets_.Get(0) != 0 || offsets_.Get(dict_size) != row_count) {
    return Status::Corruption("group-key CSR boundaries corrupt");
  }
  for (uint64_t v = 0; v < dict_size; ++v) {
    if (offsets_.Get(v) > offsets_.Get(v + 1)) {
      return Status::Corruption("group-key offsets not monotone");
    }
  }
  return Status::OK();
}

}  // namespace hyrise_nv::index
