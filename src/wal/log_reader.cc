#include "wal/log_reader.h"

#include <string>
#include <vector>

#include "common/logging.h"

namespace hyrise_nv::wal {

namespace {

/// A torn tail has nothing decodable after the corrupt point: the crash
/// cut the log short, so the bytes past it are absent or garbage. A
/// decodable record after the corruption means the damage sits inside
/// the durable prefix (bit rot, a bad sector) — replay must fail loudly
/// instead of silently truncating away committed work.
bool HasDecodableRecordAfter(const uint8_t* data, size_t len, size_t from) {
  for (size_t pos = from; pos < len; ++pos) {
    size_t consumed = 0;
    if (DecodeRecord(data + pos, len - pos, &consumed).ok()) return true;
  }
  return false;
}

}  // namespace

Result<uint64_t> LogReader::ForEach(
    uint64_t start_offset,
    const std::function<Status(const LogRecord&)>& fn) {
  const uint64_t end = device_->size();
  if (start_offset > end) {
    return Status::InvalidArgument("log start offset beyond end");
  }
  const size_t total = end - start_offset;
  std::vector<uint8_t> data(total);
  if (total > 0) {
    HYRISE_NV_RETURN_NOT_OK(device_->Read(start_offset, data.data(), total));
  }

  uint64_t count = 0;
  size_t pos = 0;
  while (pos < total) {
    size_t consumed = 0;
    auto record = DecodeRecord(data.data() + pos, total - pos, &consumed);
    if (!record.ok()) {
      if (record.status().IsNotFound()) break;  // clean end
      if (record.status().IsCorruption()) {
        if (HasDecodableRecordAfter(data.data(), total, pos + 1)) {
          return Status::Corruption(
              "log corrupt at offset " +
              std::to_string(start_offset + pos) +
              " with valid records after it (mid-log corruption, not a "
              "torn tail): " + record.status().message());
        }
        // Torn tail: a crash between flush and sync cuts the final
        // record short (or leaves garbage). Like LevelDB, replay treats
        // the first undecodable record as the end of the log — framed
        // CRCs guarantee nothing partial is ever applied.
        HYRISE_NV_LOG(kInfo) << "log replay stops at torn tail, offset "
                             << (start_offset + pos) << ": "
                             << record.status().ToString();
        break;
      }
      return record.status();
    }
    HYRISE_NV_RETURN_NOT_OK(fn(*record));
    pos += consumed;
    ++count;
  }
  return count;
}

}  // namespace hyrise_nv::wal
