#include "wal/log_reader.h"

#include <vector>

#include "common/logging.h"

namespace hyrise_nv::wal {

Result<uint64_t> LogReader::ForEach(
    uint64_t start_offset,
    const std::function<Status(const LogRecord&)>& fn) {
  const uint64_t end = device_->size();
  if (start_offset > end) {
    return Status::InvalidArgument("log start offset beyond end");
  }
  const size_t total = end - start_offset;
  std::vector<uint8_t> data(total);
  if (total > 0) {
    HYRISE_NV_RETURN_NOT_OK(device_->Read(start_offset, data.data(), total));
  }

  uint64_t count = 0;
  size_t pos = 0;
  while (pos < total) {
    size_t consumed = 0;
    auto record = DecodeRecord(data.data() + pos, total - pos, &consumed);
    if (!record.ok()) {
      if (record.status().IsNotFound()) break;  // clean end
      if (record.status().IsCorruption()) {
        // Torn tail: a crash between flush and sync cuts the final
        // record short (or leaves garbage). Like LevelDB, replay treats
        // the first undecodable record as the end of the log — framed
        // CRCs guarantee nothing partial is ever applied.
        HYRISE_NV_LOG(kInfo) << "log replay stops at torn tail, offset "
                             << (start_offset + pos) << ": "
                             << record.status().ToString();
        break;
      }
      return record.status();
    }
    HYRISE_NV_RETURN_NOT_OK(fn(*record));
    pos += consumed;
    ++count;
  }
  return count;
}

}  // namespace hyrise_nv::wal
