#include "wal/log_writer.h"

namespace hyrise_nv::wal {

Status LogWriter::Append(const LogRecord& record) {
  const std::vector<uint8_t> framed = EncodeRecord(record);
  std::lock_guard<std::mutex> guard(mutex_);
  buffer_.insert(buffer_.end(), framed.begin(), framed.end());
  return Status::OK();
}

Status LogWriter::Flush() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (buffer_.empty()) return Status::OK();
  auto append_result = device_->Append(buffer_.data(), buffer_.size());
  if (!append_result.ok()) return append_result.status();
  buffer_.clear();
  return Status::OK();
}

Status LogWriter::Commit(const LogRecord& commit_record) {
  HYRISE_NV_RETURN_NOT_OK(Append(commit_record));
  HYRISE_NV_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> guard(mutex_);
  ++total_commits_;
  if (++unsynced_commits_ >= sync_every_) {
    HYRISE_NV_RETURN_NOT_OK(device_->Sync());
    synced_commits_ = total_commits_;
    unsynced_commits_ = 0;
  }
  return Status::OK();
}

Status LogWriter::SyncNow() {
  HYRISE_NV_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> guard(mutex_);
  HYRISE_NV_RETURN_NOT_OK(device_->Sync());
  synced_commits_ = total_commits_;
  unsynced_commits_ = 0;
  return Status::OK();
}

}  // namespace hyrise_nv::wal
