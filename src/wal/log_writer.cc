#include "wal/log_writer.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv::wal {

namespace {
constexpr uint64_t kMaxBackoffUs = 1'000'000;  // 1s cap per attempt
}  // namespace

Status LogWriter::RetryIo(const char* what,
                          const std::function<Status()>& io) {
  Status status = io();
  uint64_t backoff_us = io_retry_backoff_us_;
  for (uint32_t attempt = 0;
       !status.ok() && status.code() == StatusCode::kIOError &&
       attempt < io_max_retries_;
       ++attempt) {
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    HYRISE_NV_LOG(kWarn) << "wal: " << what << " failed ("
                         << status.ToString() << "), retry "
                         << (attempt + 1) << "/" << io_max_retries_
                         << " after " << backoff_us << "us";
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, kMaxBackoffUs);
    status = io();
  }
  if (!status.ok() && status.code() == StatusCode::kIOError) {
    const bool was_degraded =
        degraded_.exchange(true, std::memory_order_release);
#if HYRISE_NV_METRICS_ENABLED
    if (!was_degraded) {
      static obs::Counter& degraded_flips =
          obs::MetricsRegistry::Instance().GetCounter("wal.degraded.flips");
      degraded_flips.Inc();
      if (obs::BlackboxWriter* bb = obs::BlackboxWriter::Current()) {
        bb->Record(obs::BlackboxEventType::kWalDegraded, 1);
      }
    }
#else
    (void)was_degraded;
#endif
    HYRISE_NV_LOG(kError)
        << "wal: " << what << " failed after " << io_max_retries_
        << " retries (" << status.ToString()
        << "); entering degraded (read-only) mode";
  }
  return status;
}

Status LogWriter::Append(const LogRecord& record) {
  if (degraded()) {
    return Status::IOError(
        "log writer is degraded after unrecoverable I/O errors; "
        "database is read-only");
  }
  const std::vector<uint8_t> framed = EncodeRecord(record);
  std::lock_guard<std::mutex> guard(mutex_);
  buffer_.insert(buffer_.end(), framed.begin(), framed.end());
  return Status::OK();
}

Status LogWriter::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
#if HYRISE_NV_METRICS_ENABLED
  static obs::Histogram& batch_bytes =
      obs::MetricsRegistry::Instance().GetHistogram("wal.batch.bytes");
  batch_bytes.Record(buffer_.size());
#endif
  HYRISE_NV_RETURN_NOT_OK(RetryIo("append", [&] {
    auto append_result = device_->Append(buffer_.data(), buffer_.size());
    return append_result.ok() ? Status::OK() : append_result.status();
  }));
  buffer_.clear();
  return Status::OK();
}

Status LogWriter::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  group_cv_.wait(lock, [&] { return !leader_active_; });
  return FlushLocked();
}

Status LogWriter::SyncDevice() {
#if HYRISE_NV_METRICS_ENABLED
  const uint64_t start_ticks = obs::FastClock::NowTicks();
#endif
  Status status = RetryIo("sync", [&] { return device_->Sync(); });
#if HYRISE_NV_METRICS_ENABLED
  static obs::Histogram& fsync_latency =
      obs::MetricsRegistry::Instance().GetHistogram("wal.fsync.latency_ns");
  static obs::Counter& fsync_count =
      obs::MetricsRegistry::Instance().GetCounter("wal.fsync.count");
  const uint64_t sync_ns = obs::FastClock::TicksToNanos(
      static_cast<int64_t>(obs::FastClock::NowTicks() - start_ticks));
  fsync_latency.Record(sync_ns);
  fsync_count.Inc();
  if (obs::BlackboxWriter* bb = obs::BlackboxWriter::Current()) {
    bb->Record(obs::BlackboxEventType::kWalSync,
               total_commits_.load(std::memory_order_relaxed), sync_ns);
  }
#endif
  return status;
}

Status LogWriter::GroupCommit(const std::vector<uint8_t>& framed) {
  std::unique_lock<std::mutex> lock(mutex_);
  buffer_.insert(buffer_.end(), framed.begin(), framed.end());
  const uint64_t my_seqno =
      total_commits_.fetch_add(1, std::memory_order_relaxed) + 1;

  while (true) {
    if (synced_commits_.load(std::memory_order_relaxed) >= my_seqno) {
      // A leader's fsync already covered this commit.
      return Status::OK();
    }
    if (degraded()) {
      return Status::IOError(
          "log writer is degraded after unrecoverable I/O errors; "
          "database is read-only");
    }
    if (!leader_active_) break;  // leadership is free — take it
    group_cv_.wait(lock);
  }

  // Leader: swap the buffer out and run device I/O unlocked, so
  // followers can keep appending the next batch meanwhile.
  leader_active_ = true;
  std::vector<uint8_t> batch;
  batch.swap(buffer_);
  const uint64_t batch_high =
      total_commits_.load(std::memory_order_relaxed);
  const uint64_t batch_low =
      synced_commits_.load(std::memory_order_relaxed);
  in_flight_bytes_.store(batch.size(), std::memory_order_relaxed);
  lock.unlock();

  Status status = Status::OK();
  if (!batch.empty()) {
#if HYRISE_NV_METRICS_ENABLED
    static obs::Histogram& batch_bytes =
        obs::MetricsRegistry::Instance().GetHistogram("wal.batch.bytes");
    batch_bytes.Record(batch.size());
#endif
    status = RetryIo("append", [&] {
      auto append_result = device_->Append(batch.data(), batch.size());
      return append_result.ok() ? Status::OK() : append_result.status();
    });
  }
  if (status.ok()) {
    status = SyncDevice();
  }

  lock.lock();
  if (status.ok()) {
    synced_commits_.store(batch_high, std::memory_order_relaxed);
#if HYRISE_NV_METRICS_ENABLED
    static obs::Histogram& group_size =
        obs::MetricsRegistry::Instance().GetHistogram(
            "wal.group_commit.size");
    group_size.Record(batch_high - batch_low);
#endif
  } else if (!batch.empty()) {
    // Keep failed bytes buffered (ahead of anything appended since) so a
    // later flush preserves record order — matches the pre-group-commit
    // failure semantics.
    batch.insert(batch.end(), buffer_.begin(), buffer_.end());
    buffer_.swap(batch);
  }
  in_flight_bytes_.store(0, std::memory_order_relaxed);
  leader_active_ = false;
  lock.unlock();
  group_cv_.notify_all();
  return status;
}

Status LogWriter::Commit(const LogRecord& commit_record) {
  if (degraded()) {
    return Status::IOError(
        "log writer is degraded after unrecoverable I/O errors; "
        "database is read-only");
  }
  if (sync_every_ == 1) {
    return GroupCommit(EncodeRecord(commit_record));
  }
  // Lossy mode (sync every N-th commit): the window of the last < N
  // commits is acceptable loss, so a plain flush under the lock is
  // enough.
  HYRISE_NV_RETURN_NOT_OK(Append(commit_record));
  std::unique_lock<std::mutex> lock(mutex_);
  group_cv_.wait(lock, [&] { return !leader_active_; });
  HYRISE_NV_RETURN_NOT_OK(FlushLocked());
  total_commits_.fetch_add(1, std::memory_order_relaxed);
  if (++unsynced_commits_ >= sync_every_) {
    HYRISE_NV_RETURN_NOT_OK(SyncDevice());
    synced_commits_.store(total_commits_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    unsynced_commits_ = 0;
  }
  return Status::OK();
}

Status LogWriter::SyncNow() {
  std::unique_lock<std::mutex> lock(mutex_);
  group_cv_.wait(lock, [&] { return !leader_active_; });
  HYRISE_NV_RETURN_NOT_OK(FlushLocked());
  HYRISE_NV_RETURN_NOT_OK(SyncDevice());
  synced_commits_.store(total_commits_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  unsynced_commits_ = 0;
  return Status::OK();
}

}  // namespace hyrise_nv::wal
