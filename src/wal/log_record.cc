#include "wal/log_record.h"

#include <cstring>

#include "common/crc32.h"

namespace hyrise_nv::wal {

namespace {

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }
void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + 4);
}
void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + 8);
}

bool GetU8(const uint8_t* data, size_t len, size_t* pos, uint8_t* v) {
  if (*pos + 1 > len) return false;
  *v = data[(*pos)++];
  return true;
}
bool GetU32(const uint8_t* data, size_t len, size_t* pos, uint32_t* v) {
  if (*pos + 4 > len) return false;
  std::memcpy(v, data + *pos, 4);
  *pos += 4;
  return true;
}
bool GetU64(const uint8_t* data, size_t len, size_t* pos, uint64_t* v) {
  if (*pos + 8 > len) return false;
  std::memcpy(v, data + *pos, 8);
  *pos += 8;
  return true;
}

constexpr uint8_t kValueTagInt64 = 1;
constexpr uint8_t kValueTagDouble = 2;
constexpr uint8_t kValueTagString = 3;

}  // namespace

void SerializeValue(const storage::Value& value,
                    std::vector<uint8_t>* out) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    PutU8(kValueTagInt64, out);
    PutU64(static_cast<uint64_t>(*i), out);
  } else if (const auto* d = std::get_if<double>(&value)) {
    PutU8(kValueTagDouble, out);
    uint64_t bits;
    std::memcpy(&bits, d, 8);
    PutU64(bits, out);
  } else {
    const auto& s = std::get<std::string>(value);
    PutU8(kValueTagString, out);
    PutU32(static_cast<uint32_t>(s.size()), out);
    out->insert(out->end(), s.begin(), s.end());
  }
}

Result<storage::Value> DeserializeValue(const uint8_t* data, size_t len,
                                        size_t* pos) {
  uint8_t tag;
  if (!GetU8(data, len, pos, &tag)) {
    return Status::Corruption("value truncated (tag)");
  }
  switch (tag) {
    case kValueTagInt64: {
      uint64_t bits;
      if (!GetU64(data, len, pos, &bits)) {
        return Status::Corruption("value truncated (int64)");
      }
      return storage::Value(static_cast<int64_t>(bits));
    }
    case kValueTagDouble: {
      uint64_t bits;
      if (!GetU64(data, len, pos, &bits)) {
        return Status::Corruption("value truncated (double)");
      }
      double d;
      std::memcpy(&d, &bits, 8);
      return storage::Value(d);
    }
    case kValueTagString: {
      uint32_t slen;
      if (!GetU32(data, len, pos, &slen) || *pos + slen > len) {
        return Status::Corruption("value truncated (string)");
      }
      storage::Value v(std::string(
          reinterpret_cast<const char*>(data + *pos), slen));
      *pos += slen;
      return v;
    }
    default:
      return Status::Corruption("unknown value tag");
  }
}

LogRecord LogRecord::Insert(storage::Tid tid, uint64_t table_id,
                            std::vector<storage::Value> values) {
  LogRecord r;
  r.type = RecordType::kInsert;
  r.tid = tid;
  r.table_id = table_id;
  r.values = std::move(values);
  return r;
}

LogRecord LogRecord::InsertEncoded(storage::Tid tid, uint64_t table_id,
                                   std::vector<storage::ValueId> ids) {
  LogRecord r;
  r.type = RecordType::kInsertEncoded;
  r.tid = tid;
  r.table_id = table_id;
  r.value_ids = std::move(ids);
  return r;
}

LogRecord LogRecord::DictAdd(uint64_t table_id, uint32_t column,
                             storage::Value value) {
  LogRecord r;
  r.type = RecordType::kDictAdd;
  r.table_id = table_id;
  r.column = column;
  r.dict_value = std::move(value);
  return r;
}

LogRecord LogRecord::Delete(storage::Tid tid, uint64_t table_id,
                            storage::RowLocation loc) {
  LogRecord r;
  r.type = RecordType::kDelete;
  r.tid = tid;
  r.table_id = table_id;
  r.loc = loc;
  return r;
}

LogRecord LogRecord::Commit(storage::Tid tid, storage::Cid cid) {
  LogRecord r;
  r.type = RecordType::kCommit;
  r.tid = tid;
  r.cid = cid;
  return r;
}

LogRecord LogRecord::Abort(storage::Tid tid) {
  LogRecord r;
  r.type = RecordType::kAbort;
  r.tid = tid;
  return r;
}

LogRecord LogRecord::Prepare(storage::Tid tid, uint64_t gtid) {
  LogRecord r;
  r.type = RecordType::kPrepare;
  r.tid = tid;
  r.gtid = gtid;
  return r;
}

LogRecord LogRecord::CreateTable(uint64_t table_id, std::string name,
                                 std::vector<uint8_t> schema_blob) {
  LogRecord r;
  r.type = RecordType::kCreateTable;
  r.table_id = table_id;
  r.table_name = std::move(name);
  r.schema_blob = std::move(schema_blob);
  return r;
}

LogRecord LogRecord::CreateIndex(uint64_t table_id, uint32_t column,
                                 uint32_t kind) {
  LogRecord r;
  r.type = RecordType::kCreateIndex;
  r.table_id = table_id;
  r.column = column;
  r.index_kind = kind;
  return r;
}

std::vector<uint8_t> EncodeRecord(const LogRecord& record) {
  std::vector<uint8_t> body;
  PutU8(static_cast<uint8_t>(record.type), &body);
  switch (record.type) {
    case RecordType::kInsert:
      PutU64(record.tid, &body);
      PutU64(record.table_id, &body);
      PutU32(static_cast<uint32_t>(record.values.size()), &body);
      for (const auto& v : record.values) SerializeValue(v, &body);
      break;
    case RecordType::kInsertEncoded:
      PutU64(record.tid, &body);
      PutU64(record.table_id, &body);
      PutU32(static_cast<uint32_t>(record.value_ids.size()), &body);
      for (const auto id : record.value_ids) PutU32(id, &body);
      break;
    case RecordType::kDictAdd:
      PutU64(record.table_id, &body);
      PutU32(record.column, &body);
      SerializeValue(record.dict_value, &body);
      break;
    case RecordType::kDelete:
      PutU64(record.tid, &body);
      PutU64(record.table_id, &body);
      PutU8(record.loc.in_main ? 1 : 0, &body);
      PutU64(record.loc.row, &body);
      break;
    case RecordType::kCommit:
      PutU64(record.tid, &body);
      PutU64(record.cid, &body);
      break;
    case RecordType::kAbort:
      PutU64(record.tid, &body);
      break;
    case RecordType::kPrepare:
      PutU64(record.tid, &body);
      PutU64(record.gtid, &body);
      break;
    case RecordType::kCreateTable:
      PutU64(record.table_id, &body);
      PutU32(static_cast<uint32_t>(record.table_name.size()), &body);
      body.insert(body.end(), record.table_name.begin(),
                  record.table_name.end());
      PutU32(static_cast<uint32_t>(record.schema_blob.size()), &body);
      body.insert(body.end(), record.schema_blob.begin(),
                  record.schema_blob.end());
      break;
    case RecordType::kCreateIndex:
      PutU64(record.table_id, &body);
      PutU32(record.column, &body);
      PutU32(record.index_kind, &body);
      break;
  }

  std::vector<uint8_t> framed;
  framed.reserve(body.size() + 8);
  PutU32(MaskCrc(Crc32c(body.data(), body.size())), &framed);
  PutU32(static_cast<uint32_t>(body.size()), &framed);
  framed.insert(framed.end(), body.begin(), body.end());
  return framed;
}

Result<LogRecord> DecodeRecord(const uint8_t* data, size_t len,
                               size_t* consumed) {
  if (len < 8) {
    return Status::NotFound("end of log");
  }
  uint32_t masked_crc, body_len;
  std::memcpy(&masked_crc, data, 4);
  std::memcpy(&body_len, data + 4, 4);
  if (masked_crc == 0 && body_len == 0) {
    return Status::NotFound("end of log (zero frame)");
  }
  if (8 + static_cast<size_t>(body_len) > len) {
    return Status::Corruption("torn record at log tail");
  }
  const uint8_t* body = data + 8;
  if (Crc32c(body, body_len) != UnmaskCrc(masked_crc)) {
    return Status::Corruption("log record CRC mismatch");
  }
  *consumed = 8 + body_len;

  LogRecord record;
  size_t pos = 0;
  uint8_t type;
  if (!GetU8(body, body_len, &pos, &type)) {
    return Status::Corruption("record truncated (type)");
  }
  record.type = static_cast<RecordType>(type);
  auto need = [&](bool ok) {
    return ok ? Status::OK() : Status::Corruption("record truncated");
  };
  switch (record.type) {
    case RecordType::kInsert: {
      uint32_t count;
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.tid)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.table_id)));
      HYRISE_NV_RETURN_NOT_OK(need(GetU32(body, body_len, &pos, &count)));
      record.values.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        auto value = DeserializeValue(body, body_len, &pos);
        if (!value.ok()) return value.status();
        record.values.push_back(std::move(value).ValueUnsafe());
      }
      break;
    }
    case RecordType::kInsertEncoded: {
      uint32_t count;
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.tid)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.table_id)));
      HYRISE_NV_RETURN_NOT_OK(need(GetU32(body, body_len, &pos, &count)));
      record.value_ids.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        HYRISE_NV_RETURN_NOT_OK(
            need(GetU32(body, body_len, &pos, &record.value_ids[i])));
      }
      break;
    }
    case RecordType::kDictAdd: {
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.table_id)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU32(body, body_len, &pos, &record.column)));
      auto value = DeserializeValue(body, body_len, &pos);
      if (!value.ok()) return value.status();
      record.dict_value = std::move(value).ValueUnsafe();
      break;
    }
    case RecordType::kDelete: {
      uint8_t in_main;
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.tid)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.table_id)));
      HYRISE_NV_RETURN_NOT_OK(need(GetU8(body, body_len, &pos, &in_main)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.loc.row)));
      record.loc.in_main = in_main != 0;
      break;
    }
    case RecordType::kCommit:
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.tid)));
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.cid)));
      break;
    case RecordType::kAbort:
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.tid)));
      break;
    case RecordType::kPrepare:
      HYRISE_NV_RETURN_NOT_OK(need(GetU64(body, body_len, &pos, &record.tid)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.gtid)));
      break;
    case RecordType::kCreateTable: {
      uint32_t name_len, blob_len;
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.table_id)));
      HYRISE_NV_RETURN_NOT_OK(need(GetU32(body, body_len, &pos, &name_len)));
      if (pos + name_len > body_len) {
        return Status::Corruption("record truncated (table name)");
      }
      record.table_name.assign(
          reinterpret_cast<const char*>(body + pos), name_len);
      pos += name_len;
      HYRISE_NV_RETURN_NOT_OK(need(GetU32(body, body_len, &pos, &blob_len)));
      if (pos + blob_len > body_len) {
        return Status::Corruption("record truncated (schema blob)");
      }
      record.schema_blob.assign(body + pos, body + pos + blob_len);
      pos += blob_len;
      break;
    }
    case RecordType::kCreateIndex:
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU64(body, body_len, &pos, &record.table_id)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU32(body, body_len, &pos, &record.column)));
      HYRISE_NV_RETURN_NOT_OK(
          need(GetU32(body, body_len, &pos, &record.index_kind)));
      break;
    default:
      return Status::Corruption("unknown record type " +
                                std::to_string(type));
  }
  return record;
}

}  // namespace hyrise_nv::wal
