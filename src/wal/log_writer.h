#ifndef HYRISE_NV_WAL_LOG_WRITER_H_
#define HYRISE_NV_WAL_LOG_WRITER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "wal/block_device.h"
#include "wal/log_record.h"

namespace hyrise_nv::wal {

/// Buffered WAL appender with group commit.
///
/// Records accumulate in a volatile buffer; Commit() flushes and — every
/// `sync_every_n_commits`-th commit — syncs the device. With N == 1 every
/// commit is synchronously durable; with N > 1 the writer models group
/// commit: the last < N commits may be lost in a crash, but the log never
/// tears mid-record (framed CRCs make a torn tail detectable).
class LogWriter {
 public:
  LogWriter(BlockDevice* device, uint32_t sync_every_n_commits)
      : device_(device),
        sync_every_(sync_every_n_commits == 0 ? 1 : sync_every_n_commits) {}

  /// Buffers a non-commit record.
  Status Append(const LogRecord& record);

  /// Buffers the commit record, flushes, and applies the sync policy.
  Status Commit(const LogRecord& commit_record);

  /// Writes the buffer to the device (no sync).
  Status Flush();

  /// Flush + sync, regardless of the group-commit counter.
  Status SyncNow();

  /// Total bytes appended so far (including still-buffered ones).
  uint64_t lsn() const { return device_->size() + buffer_.size(); }

  uint64_t synced_commits() const { return synced_commits_; }
  uint64_t total_commits() const { return total_commits_; }

 private:
  BlockDevice* device_;
  uint32_t sync_every_;
  uint32_t unsynced_commits_ = 0;
  uint64_t total_commits_ = 0;
  uint64_t synced_commits_ = 0;
  std::vector<uint8_t> buffer_;
  std::mutex mutex_;
};

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_LOG_WRITER_H_
