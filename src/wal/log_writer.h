#ifndef HYRISE_NV_WAL_LOG_WRITER_H_
#define HYRISE_NV_WAL_LOG_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "wal/block_device.h"
#include "wal/log_record.h"

namespace hyrise_nv::wal {

/// Buffered WAL appender with group commit.
///
/// Records accumulate in a volatile buffer. With `sync_every_n_commits`
/// == 1 (the default durable mode) Commit() runs a leader/follower group
/// commit: the first committer to reach the device becomes the leader,
/// swaps the whole buffer out, and performs one append + fsync for every
/// commit that joined the buffer meanwhile; followers block until a
/// leader's sync covers their commit. Every acknowledged commit is
/// synchronously durable, but concurrent committers share fsyncs instead
/// of queueing one fsync each.
///
/// With N > 1 the writer instead models *lossy* group commit: only every
/// N-th commit syncs, so the last < N commits may be lost in a crash —
/// the log still never tears mid-record (framed CRCs make a torn tail
/// detectable).
///
/// I/O errors (EIO, short writes, failed fdatasync) are retried with
/// exponential backoff up to `io_max_retries` times. If the device stays
/// broken the writer enters degraded mode: every further durability
/// request fails fast with an I/O error so the engine can flip to
/// read-only instead of aborting the process or, worse, acknowledging
/// commits it cannot make durable.
class LogWriter {
 public:
  LogWriter(BlockDevice* device, uint32_t sync_every_n_commits,
            uint32_t io_max_retries = 4, uint32_t io_retry_backoff_us = 50)
      : device_(device),
        sync_every_(sync_every_n_commits == 0 ? 1 : sync_every_n_commits),
        io_max_retries_(io_max_retries),
        io_retry_backoff_us_(
            io_retry_backoff_us == 0 ? 1 : io_retry_backoff_us) {}

  /// Buffers a non-commit record.
  Status Append(const LogRecord& record);

  /// Buffers the commit record and makes it durable per the sync policy
  /// (leader/follower group fsync when sync_every == 1). Thread-safe;
  /// concurrent callers batch into shared fsyncs.
  Status Commit(const LogRecord& commit_record);

  /// Writes the buffer to the device (no sync).
  Status Flush();

  /// Flush + sync, regardless of the group-commit counter.
  Status SyncNow();

  /// Total bytes appended so far (including still-buffered ones and a
  /// leader's in-flight batch).
  uint64_t lsn() const {
    return device_->size() + buffer_.size() +
           in_flight_bytes_.load(std::memory_order_relaxed);
  }

  uint64_t synced_commits() const {
    return synced_commits_.load(std::memory_order_relaxed);
  }
  uint64_t total_commits() const {
    return total_commits_.load(std::memory_order_relaxed);
  }

  /// True once an I/O error survived all retries. Degraded is sticky:
  /// the log's durable prefix is intact, but nothing past it can be
  /// promised, so the engine must stop accepting writes.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// Number of I/O retry attempts performed so far (successful or not).
  uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }

 private:
  /// Runs `io`, retrying transient I/O errors with exponential backoff
  /// (io_retry_backoff_us, doubling, capped at ~1s per attempt). On
  /// exhaustion marks the writer degraded and returns the last error.
  /// Non-I/O errors are returned immediately without retry. Touches only
  /// atomics — safe with or without mutex_ held.
  Status RetryIo(const char* what, const std::function<Status()>& io);

  /// Caller must hold mutex_ (and must not race a leader's device I/O —
  /// wait for !leader_active_ first).
  Status FlushLocked();

  /// Syncs the device through RetryIo, recording fsync count + latency
  /// metrics. Same device-exclusivity requirement as FlushLocked.
  Status SyncDevice();

  /// The sync_every_ == 1 leader/follower path (see class comment).
  Status GroupCommit(const std::vector<uint8_t>& framed);

  BlockDevice* device_;
  uint32_t sync_every_;
  uint32_t io_max_retries_;
  uint32_t io_retry_backoff_us_;
  uint32_t unsynced_commits_ = 0;  // lossy path only; guarded by mutex_
  std::atomic<uint64_t> total_commits_{0};
  std::atomic<uint64_t> synced_commits_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> io_retries_{0};
  /// Bytes swapped out of buffer_ by a group-commit leader and not yet
  /// reflected in device_->size() (keeps lsn() monotone mid-batch).
  std::atomic<uint64_t> in_flight_bytes_{0};
  std::vector<uint8_t> buffer_;
  std::mutex mutex_;
  /// Guarded by mutex_: true while a leader runs device I/O unlocked.
  bool leader_active_ = false;
  /// Signalled when a leader finishes (followers re-check coverage) and
  /// when leadership frees up.
  std::condition_variable group_cv_;
};

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_LOG_WRITER_H_
