#include "wal/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "nvm/nvm_env.h"
#include "storage/layout.h"

namespace hyrise_nv::wal {

namespace {

constexpr uint64_t kCheckpointMagic = 0x48594E5643504B31ull;  // "HYNVCPK1"
constexpr uint32_t kCheckpointVersion = 1;

class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Bytes(const std::vector<uint8_t>& b) {
    U64(b.size());
    Raw(b.data(), b.size());
  }
  void Raw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  std::vector<uint8_t>& buffer() { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status Str(std::string* s) {
    uint32_t n;
    HYRISE_NV_RETURN_NOT_OK(U32(&n));
    if (pos_ + n > len_) return Err();
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }
  Status Raw(void* out, size_t n) {
    if (pos_ + n > len_) return Err();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  const uint8_t* Peek(size_t n) const {
    if (pos_ + n > len_) return nullptr;
    return data_ + pos_;
  }
  void Skip(size_t n) { pos_ += n; }

 private:
  static Status Err() { return Status::Corruption("checkpoint truncated"); }
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

template <typename T>
void WritePVector(ByteWriter& w, const alloc::PVector<T>& vec) {
  w.U64(vec.size());
  w.Raw(vec.data(), vec.size() * sizeof(T));
}

template <typename T>
Status ReadPVector(ByteReader& r, alloc::PVector<T>& vec) {
  uint64_t count;
  HYRISE_NV_RETURN_NOT_OK(r.U64(&count));
  if (count == 0) return Status::OK();
  const uint8_t* data = r.Peek(count * sizeof(T));
  if (data == nullptr) {
    return Status::Corruption("checkpoint vector truncated");
  }
  HYRISE_NV_RETURN_NOT_OK(
      vec.BulkAppend(reinterpret_cast<const T*>(data), count));
  r.Skip(count * sizeof(T));
  return Status::OK();
}

void SerializeTable(ByteWriter& w, storage::Table& table) {
  auto& heap = table.heap();
  auto& region = heap.region();
  auto& alloc = heap.allocator();
  storage::PTableGroup* group = table.group();
  const uint64_t ncols = table.schema().num_columns();

  w.Str(table.name());
  w.U64(table.id());
  w.Bytes(table.schema().Serialize());

  uint32_t index_count = 0;
  for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
    if (group->indexes[s].state == 1) ++index_count;
  }
  w.U32(index_count);
  for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
    if (group->indexes[s].state == 1) {
      w.U64(group->indexes[s].column);
      w.U64(group->indexes[s].kind);
    }
  }

  w.U64(table.main_row_count());
  for (uint64_t c = 0; c < ncols; ++c) {
    storage::PMainColumnMeta* col = group->main_col(c);
    w.U64(col->bits);
    alloc::PVector<uint64_t> dict(&region, &alloc, &col->dict_values);
    alloc::PVector<char> blob(&region, &alloc, &col->dict_blob);
    alloc::PVector<uint64_t> words(&region, &alloc, &col->attr_words);
    WritePVector(w, dict);
    WritePVector(w, blob);
    WritePVector(w, words);
  }
  {
    alloc::PVector<storage::MvccEntry> mvcc(&region, &alloc,
                                            &group->main_mvcc);
    WritePVector(w, mvcc);
  }

  for (uint64_t c = 0; c < ncols; ++c) {
    storage::PDeltaColumnMeta* col = group->delta_col(c, ncols);
    alloc::PVector<uint64_t> dict(&region, &alloc, &col->dict_values);
    alloc::PVector<char> blob(&region, &alloc, &col->dict_blob);
    alloc::PVector<uint32_t> attr(&region, &alloc, &col->attr);
    WritePVector(w, dict);
    WritePVector(w, blob);
    WritePVector(w, attr);
  }
  {
    alloc::PVector<storage::MvccEntry> mvcc(&region, &alloc,
                                            &group->delta_mvcc);
    WritePVector(w, mvcc);
  }
}

Status DeserializeTable(ByteReader& r, alloc::PHeap& heap,
                        storage::Catalog& catalog, CheckpointInfo* info) {
  auto& region = heap.region();
  auto& alloc = heap.allocator();

  std::string name;
  uint64_t table_id;
  HYRISE_NV_RETURN_NOT_OK(r.Str(&name));
  HYRISE_NV_RETURN_NOT_OK(r.U64(&table_id));
  uint64_t schema_len;
  HYRISE_NV_RETURN_NOT_OK(r.U64(&schema_len));
  const uint8_t* schema_bytes = r.Peek(schema_len);
  if (schema_bytes == nullptr) {
    return Status::Corruption("checkpoint schema truncated");
  }
  auto schema_result =
      storage::Schema::Deserialize(schema_bytes, schema_len);
  if (!schema_result.ok()) return schema_result.status();
  r.Skip(schema_len);
  const storage::Schema& schema = *schema_result;
  const uint64_t ncols = schema.num_columns();

  auto table_result = catalog.RestoreTable(name, schema, table_id);
  if (!table_result.ok()) return table_result.status();
  storage::Table* table = *table_result;
  storage::PTableGroup* group = table->group();

  uint32_t index_count;
  HYRISE_NV_RETURN_NOT_OK(r.U32(&index_count));
  for (uint32_t i = 0; i < index_count; ++i) {
    uint64_t column, kind;
    HYRISE_NV_RETURN_NOT_OK(r.U64(&column));
    HYRISE_NV_RETURN_NOT_OK(r.U64(&kind));
    info->indexed_columns.push_back({name, column, kind});
  }

  uint64_t main_rows;
  HYRISE_NV_RETURN_NOT_OK(r.U64(&main_rows));
  for (uint64_t c = 0; c < ncols; ++c) {
    storage::PMainColumnMeta* col = group->main_col(c);
    HYRISE_NV_RETURN_NOT_OK(r.U64(&col->bits));
    region.Persist(&col->bits, sizeof(col->bits));
    alloc::PVector<uint64_t> dict(&region, &alloc, &col->dict_values);
    alloc::PVector<char> blob(&region, &alloc, &col->dict_blob);
    alloc::PVector<uint64_t> words(&region, &alloc, &col->attr_words);
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, dict));
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, blob));
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, words));
  }
  {
    alloc::PVector<storage::MvccEntry> mvcc(&region, &alloc,
                                            &group->main_mvcc);
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, mvcc));
  }
  group->main_row_count = main_rows;
  region.Persist(&group->main_row_count, sizeof(group->main_row_count));

  for (uint64_t c = 0; c < ncols; ++c) {
    storage::PDeltaColumnMeta* col = group->delta_col(c, ncols);
    alloc::PVector<uint64_t> dict(&region, &alloc, &col->dict_values);
    alloc::PVector<char> blob(&region, &alloc, &col->dict_blob);
    alloc::PVector<uint32_t> attr(&region, &alloc, &col->attr);
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, dict));
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, blob));
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, attr));
  }
  {
    alloc::PVector<storage::MvccEntry> mvcc(&region, &alloc,
                                            &group->delta_mvcc);
    HYRISE_NV_RETURN_NOT_OK(ReadPVector(r, mvcc));
  }
  return table->ReattachGroup();
}

}  // namespace

Status WriteCheckpoint(const std::string& path,
                       const BlockDeviceOptions& device_options,
                       storage::Catalog& catalog,
                       txn::CommitTable& commit_table,
                       uint64_t log_offset) {
  ByteWriter w;
  w.U64(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  w.U64(log_offset);
  w.U64(commit_table.block()->commit_watermark);
  w.U64(commit_table.block()->tid_block);
  w.U64(commit_table.block()->cid_block);
  w.U32(static_cast<uint32_t>(catalog.num_tables()));
  for (const auto& table : catalog.tables()) {
    SerializeTable(w, *table);
  }
  const uint32_t crc = MaskCrc(Crc32c(w.buffer().data(), w.buffer().size()));
  w.U32(crc);

  // Write to a temp file and rename, so a crash never clobbers the
  // previous checkpoint.
  const std::string tmp_path = path + ".tmp";
  {
    auto device_result = BlockDevice::Create(tmp_path, device_options);
    if (!device_result.ok()) return device_result.status();
    auto append_result =
        (*device_result)->Append(w.buffer().data(), w.buffer().size());
    if (!append_result.ok()) return append_result.status();
    HYRISE_NV_RETURN_NOT_OK((*device_result)->Sync());
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("checkpoint rename failed");
  }
  return Status::OK();
}

Result<CheckpointInfo> LoadCheckpoint(
    const std::string& path, const BlockDeviceOptions& device_options,
    alloc::PHeap& heap, storage::Catalog& catalog,
    txn::CommitTable& commit_table) {
  if (!nvm::FileExists(path)) {
    return Status::NotFound("no checkpoint at " + path);
  }
  auto device_result = BlockDevice::Open(path, device_options);
  if (!device_result.ok()) return device_result.status();
  BlockDevice& device = **device_result;
  if (device.size() < 8 + 4 + 8 * 4 + 4 + 4) {
    return Status::Corruption("checkpoint too small");
  }
  std::vector<uint8_t> data(device.size());
  HYRISE_NV_RETURN_NOT_OK(device.Read(0, data.data(), data.size()));

  const size_t content_len = data.size() - 4;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + content_len, 4);
  if (stored_crc != MaskCrc(Crc32c(data.data(), content_len))) {
    return Status::Corruption("checkpoint CRC mismatch");
  }

  ByteReader r(data.data(), content_len);
  uint64_t magic;
  uint32_t version;
  CheckpointInfo info;
  info.bytes = data.size();
  HYRISE_NV_RETURN_NOT_OK(r.U64(&magic));
  HYRISE_NV_RETURN_NOT_OK(r.U32(&version));
  if (magic != kCheckpointMagic || version != kCheckpointVersion) {
    return Status::Corruption("bad checkpoint header");
  }
  HYRISE_NV_RETURN_NOT_OK(r.U64(&info.log_offset));
  uint64_t watermark, tid_block, cid_block;
  HYRISE_NV_RETURN_NOT_OK(r.U64(&watermark));
  HYRISE_NV_RETURN_NOT_OK(r.U64(&tid_block));
  HYRISE_NV_RETURN_NOT_OK(r.U64(&cid_block));
  info.watermark = watermark;

  uint32_t table_count;
  HYRISE_NV_RETURN_NOT_OK(r.U32(&table_count));
  for (uint32_t t = 0; t < table_count; ++t) {
    HYRISE_NV_RETURN_NOT_OK(DeserializeTable(r, heap, catalog, &info));
  }

  // Restore transaction state.
  auto* block = commit_table.block();
  heap.region().AtomicPersist64(&block->commit_watermark, watermark);
  heap.region().AtomicPersist64(&block->tid_block, tid_block);
  heap.region().AtomicPersist64(&block->cid_block, cid_block);
  return info;
}

}  // namespace hyrise_nv::wal
