#ifndef HYRISE_NV_WAL_LOG_RECORD_H_
#define HYRISE_NV_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace hyrise_nv::wal {

/// Log record types. Two insert encodings implement the paper-era Hyrise
/// logging formats: plain value logging and dictionary-encoded logging
/// (value ids + incremental dictionary additions; smaller records, but
/// replay must reconstruct dictionaries in order).
enum class RecordType : uint8_t {
  kInsert = 1,         // values inline
  kInsertEncoded = 2,  // delta value ids
  kDictAdd = 3,        // one new delta dictionary entry
  kDelete = 4,
  kCommit = 5,
  kAbort = 6,
  kCreateTable = 7,  // DDL: table id + name + schema
  kCreateIndex = 8,  // DDL: table id + column
  kPrepare = 9,      // 2PC vote: tid + coordinator gtid; in-doubt until a
                     // kCommit/kAbort for the same tid follows
};

/// A parsed log record (union-style; fields valid per type).
struct LogRecord {
  RecordType type;
  storage::Tid tid = 0;
  uint64_t table_id = 0;
  storage::Cid cid = 0;                     // kCommit
  uint64_t gtid = 0;                        // kPrepare
  std::vector<storage::Value> values;       // kInsert
  std::vector<storage::ValueId> value_ids;  // kInsertEncoded
  uint32_t column = 0;                      // kDictAdd, kCreateIndex
  uint32_t index_kind = 0;                  // kCreateIndex
  storage::Value dict_value;                // kDictAdd
  storage::RowLocation loc;                 // kDelete
  std::string table_name;                   // kCreateTable
  std::vector<uint8_t> schema_blob;         // kCreateTable

  static LogRecord Insert(storage::Tid tid, uint64_t table_id,
                          std::vector<storage::Value> values);
  static LogRecord InsertEncoded(storage::Tid tid, uint64_t table_id,
                                 std::vector<storage::ValueId> ids);
  static LogRecord DictAdd(uint64_t table_id, uint32_t column,
                           storage::Value value);
  static LogRecord Delete(storage::Tid tid, uint64_t table_id,
                          storage::RowLocation loc);
  static LogRecord Commit(storage::Tid tid, storage::Cid cid);
  static LogRecord Abort(storage::Tid tid);
  static LogRecord Prepare(storage::Tid tid, uint64_t gtid);
  static LogRecord CreateTable(uint64_t table_id, std::string name,
                               std::vector<uint8_t> schema_blob);
  static LogRecord CreateIndex(uint64_t table_id, uint32_t column,
                               uint32_t kind);
};

/// Appends a value in its binary wire form (type-tagged).
void SerializeValue(const storage::Value& value, std::vector<uint8_t>* out);
Result<storage::Value> DeserializeValue(const uint8_t* data, size_t len,
                                        size_t* pos);

/// Serialises the record payload + frame: [masked crc32c][u32 len][body].
std::vector<uint8_t> EncodeRecord(const LogRecord& record);

/// Parses one framed record at data[0..len). On success sets `*consumed`.
/// A clean end-of-log (fewer than 8 bytes, or a zeroed frame) returns
/// NotFound; a CRC mismatch returns Corruption (torn tail).
Result<LogRecord> DecodeRecord(const uint8_t* data, size_t len,
                               size_t* consumed);

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_LOG_RECORD_H_
