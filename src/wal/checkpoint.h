#ifndef HYRISE_NV_WAL_CHECKPOINT_H_
#define HYRISE_NV_WAL_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "txn/commit_table.h"
#include "wal/block_device.h"

namespace hyrise_nv::wal {

/// Metadata recovered from a checkpoint file.
struct CheckpointInfo {
  uint64_t log_offset = 0;  // replay starts here
  storage::Cid watermark = 0;
  uint64_t bytes = 0;  // checkpoint size on device
  /// Indexes present at checkpoint time. The recovery driver re-creates
  /// them — the rebuild is a real cost of log-based recovery that instant
  /// restart avoids.
  struct IndexedColumn {
    std::string table;
    uint64_t column;
    uint64_t kind;  // storage::PIndexKind
  };
  std::vector<IndexedColumn> indexed_columns;
};

/// Writes a complete, transactionally consistent snapshot of the database
/// (all tables: dictionaries, attribute vectors, MVCC, index membership;
/// plus the commit watermark and id blocks) to `path`. `log_offset` is
/// the log position from which replay must continue after loading this
/// checkpoint. The file is written to a temp name and renamed, so a crash
/// mid-checkpoint leaves the previous checkpoint intact.
Status WriteCheckpoint(const std::string& path,
                       const BlockDeviceOptions& device_options,
                       storage::Catalog& catalog,
                       txn::CommitTable& commit_table,
                       uint64_t log_offset);

/// Loads a checkpoint into a freshly formatted heap: recreates all tables
/// in `catalog` and restores the transaction state block. Returns
/// NotFound if `path` does not exist (recovery then replays the whole
/// log).
Result<CheckpointInfo> LoadCheckpoint(
    const std::string& path, const BlockDeviceOptions& device_options,
    alloc::PHeap& heap, storage::Catalog& catalog,
    txn::CommitTable& commit_table);

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_CHECKPOINT_H_
