#include "wal/log_manager.h"

namespace hyrise_nv::wal {

Result<std::unique_ptr<LogManager>> LogManager::Create(
    const LogManagerOptions& options) {
  auto manager = std::unique_ptr<LogManager>(new LogManager(options));
  auto device_result = BlockDevice::Create(options.log_path, options.device);
  if (!device_result.ok()) return device_result.status();
  manager->device_ = std::move(device_result).ValueUnsafe();
  manager->writer_ = std::make_unique<LogWriter>(
      manager->device_.get(), options.sync_every_n_commits,
      options.io_max_retries, options.io_retry_backoff_us);
  return manager;
}

Result<std::unique_ptr<LogManager>> LogManager::OpenExisting(
    const LogManagerOptions& options) {
  auto manager = std::unique_ptr<LogManager>(new LogManager(options));
  auto device_result = BlockDevice::Open(options.log_path, options.device);
  if (!device_result.ok()) return device_result.status();
  manager->device_ = std::move(device_result).ValueUnsafe();
  manager->writer_ = std::make_unique<LogWriter>(
      manager->device_.get(), options.sync_every_n_commits,
      options.io_max_retries, options.io_retry_backoff_us);
  return manager;
}

Status LogManager::LogInsert(storage::Table& table, storage::Tid tid,
                             const std::vector<storage::Value>& row,
                             storage::RowLocation loc) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (options_.format == LogFormat::kValue) {
    return writer_->Append(LogRecord::Insert(tid, table.id(), row));
  }

  // Dictionary-encoded logging: emit new dictionary entries, then the
  // encoded row. Order matters — replay reconstructs dictionaries by
  // applying DictAdds in log order, reproducing the same value ids.
  const uint64_t ncols = table.schema().num_columns();
  std::vector<storage::ValueId> ids(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    const auto& dict = table.delta().column(c).dictionary();
    uint64_t& logged = dict_logged_[{table.id(), c}];
    for (uint64_t id = logged; id < dict.size(); ++id) {
      HYRISE_NV_RETURN_NOT_OK(writer_->Append(LogRecord::DictAdd(
          table.id(), c, dict.GetValue(static_cast<storage::ValueId>(id)))));
    }
    logged = dict.size();
    ids[c] = table.delta().column(c).AttrAt(loc.row);
  }
  return writer_->Append(LogRecord::InsertEncoded(tid, table.id(), ids));
}

Status LogManager::LogDelete(storage::Table& table, storage::Tid tid,
                             storage::RowLocation loc) {
  std::lock_guard<std::mutex> guard(mutex_);
  return writer_->Append(LogRecord::Delete(tid, table.id(), loc));
}

Status LogManager::LogCreateTable(storage::Table& table) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    HYRISE_NV_RETURN_NOT_OK(writer_->Append(LogRecord::CreateTable(
        table.id(), table.name(), table.schema().Serialize())));
  }
  return writer_->SyncNow();
}

Status LogManager::LogCreateIndex(uint64_t table_id, uint32_t column,
                                  uint32_t kind) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    HYRISE_NV_RETURN_NOT_OK(
        writer_->Append(LogRecord::CreateIndex(table_id, column, kind)));
  }
  return writer_->SyncNow();
}

Status LogManager::OnCommit(storage::Cid cid, const txn::Transaction& tx) {
  return writer_->Commit(LogRecord::Commit(tx.tid(), cid));
}

Status LogManager::OnAbort(const txn::Transaction& tx) {
  if (tx.context() != nullptr && tx.context()->gtid != 0) {
    // 2PC decide-abort: the ack promises the outcome, so the record must
    // be durable like a commit — a buffered abort lost to kill -9 would
    // resurrect the transaction as in-doubt after it was decided.
    return writer_->Commit(LogRecord::Abort(tx.tid()));
  }
  std::lock_guard<std::mutex> guard(mutex_);
  return writer_->Append(LogRecord::Abort(tx.tid()));
}

Status LogManager::OnPrepare(uint64_t gtid, const txn::Transaction& tx) {
  // The prepare vote must be durable before it is acked to the
  // coordinator, exactly like a commit record — Commit() joins the
  // leader/follower group fsync, amortising prepares with commits.
  return writer_->Commit(LogRecord::Prepare(tx.tid(), gtid));
}

Status LogManager::WriteCheckpointNow(storage::Catalog& catalog,
                                      txn::CommitTable& commit_table) {
  // Everything up to the current LSN must be durable before the
  // checkpoint claims to cover it.
  HYRISE_NV_RETURN_NOT_OK(writer_->SyncNow());
  const uint64_t log_offset = writer_->lsn();
  HYRISE_NV_RETURN_NOT_OK(WriteCheckpoint(options_.checkpoint_path,
                                          options_.device, catalog,
                                          commit_table, log_offset));
  ResetDictWatermarks(catalog);
  return Status::OK();
}

void LogManager::ResetDictWatermarks(storage::Catalog& catalog) {
  std::lock_guard<std::mutex> guard(mutex_);
  dict_logged_.clear();
  for (const auto& table : catalog.tables()) {
    for (uint32_t c = 0; c < table->schema().num_columns(); ++c) {
      dict_logged_[{table->id(), c}] =
          table->delta().column(c).dictionary().size();
    }
  }
}

}  // namespace hyrise_nv::wal
