#ifndef HYRISE_NV_WAL_LOG_READER_H_
#define HYRISE_NV_WAL_LOG_READER_H_

#include <functional>

#include "common/status.h"
#include "wal/block_device.h"
#include "wal/log_record.h"

namespace hyrise_nv::wal {

/// Sequential log scan used by recovery.
class LogReader {
 public:
  explicit LogReader(BlockDevice* device) : device_(device) {}

  /// Reads the log from `start_offset` to the end, invoking `fn` per
  /// record. A torn tail (partial final record, from a crash between
  /// flush and sync) terminates the scan cleanly; any corruption before
  /// the tail is an error. Returns the number of records visited.
  Result<uint64_t> ForEach(
      uint64_t start_offset,
      const std::function<Status(const LogRecord&)>& fn);

 private:
  BlockDevice* device_;
};

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_LOG_READER_H_
