#ifndef HYRISE_NV_WAL_BLOCK_DEVICE_H_
#define HYRISE_NV_WAL_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace hyrise_nv::wal {

/// Performance model of the simulated SSD/HDD used by the log-based
/// baseline (DESIGN.md §2). Zero values mean "unthrottled".
struct BlockDeviceOptions {
  double write_mbps = 0;      // sequential write bandwidth cap
  double read_mbps = 0;       // sequential read bandwidth cap
  uint32_t sync_latency_us = 0;  // per-fsync latency
};

/// An append-only block device backed by a real file, with crash
/// semantics: data is only durable up to the last Sync. SimulateCrash
/// discards the unsynced tail — the WAL-engine analogue of the NVM
/// region's shadow tracking.
class BlockDevice {
 public:
  /// Creates (truncates) the file.
  static Result<std::unique_ptr<BlockDevice>> Create(
      const std::string& path, const BlockDeviceOptions& options);

  /// Opens an existing file; everything in it counts as durable.
  static Result<std::unique_ptr<BlockDevice>> Open(
      const std::string& path, const BlockDeviceOptions& options);

  ~BlockDevice();
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(BlockDevice);

  /// Appends at the end; returns the record's start offset.
  Result<uint64_t> Append(const void* data, size_t len);

  /// Makes all appended data durable.
  Status Sync();

  /// Reads exactly `len` bytes at `offset`.
  Status Read(uint64_t offset, void* out, size_t len);

  uint64_t size() const { return size_; }
  uint64_t durable_size() const { return durable_size_; }

  /// Drops the unsynced tail, as a power failure would.
  Status SimulateCrash();

  /// Truncates to `len` (used when retiring old log segments).
  Status Truncate(uint64_t len);

  const std::string& path() const { return path_; }

  /// Cumulative injected throttle time, for benchmark reporting.
  double throttled_seconds() const { return throttled_seconds_; }

 private:
  BlockDevice(std::string path, const BlockDeviceOptions& options)
      : path_(std::move(path)), options_(options) {}

  Status Init(bool create);
  void ThrottleBandwidth(double mbps, size_t bytes);

  std::string path_;
  BlockDeviceOptions options_;
  int fd_ = -1;
  uint64_t size_ = 0;
  uint64_t durable_size_ = 0;
  double throttled_seconds_ = 0;
  std::mutex mutex_;
};

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_BLOCK_DEVICE_H_
