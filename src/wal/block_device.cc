#include "wal/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "nvm/latency_model.h"

namespace hyrise_nv::wal {

Result<std::unique_ptr<BlockDevice>> BlockDevice::Create(
    const std::string& path, const BlockDeviceOptions& options) {
  auto device =
      std::unique_ptr<BlockDevice>(new BlockDevice(path, options));
  HYRISE_NV_RETURN_NOT_OK(device->Init(/*create=*/true));
  return device;
}

Result<std::unique_ptr<BlockDevice>> BlockDevice::Open(
    const std::string& path, const BlockDeviceOptions& options) {
  auto device =
      std::unique_ptr<BlockDevice>(new BlockDevice(path, options));
  HYRISE_NV_RETURN_NOT_OK(device->Init(/*create=*/false));
  return device;
}

Status BlockDevice::Init(bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open device file " + path_ + ": " +
                           std::strerror(errno));
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    return Status::IOError("lseek failed");
  }
  size_ = static_cast<uint64_t>(end);
  durable_size_ = size_;  // pre-existing contents count as durable
  return Status::OK();
}

BlockDevice::~BlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockDevice::ThrottleBandwidth(double mbps, size_t bytes) {
  if (mbps <= 0) return;
  const double seconds =
      static_cast<double>(bytes) / (mbps * 1024.0 * 1024.0);
  throttled_seconds_ += seconds;
  nvm::SpinDelayNanos(static_cast<uint64_t>(seconds * 1e9));
}

Result<uint64_t> BlockDevice::Append(const void* data, size_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint64_t offset = size_;
  size_t done = 0;
  const auto* p = static_cast<const uint8_t*>(data);
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, p + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::IOError("pwrite failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  ThrottleBandwidth(options_.write_mbps, len);
  size_ += len;
  return offset;
}

Status BlockDevice::Sync() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed");
  }
  if (options_.sync_latency_us != 0) {
    nvm::SpinDelayNanos(uint64_t{options_.sync_latency_us} * 1000);
    throttled_seconds_ += options_.sync_latency_us / 1e6;
  }
  durable_size_ = size_;
  return Status::OK();
}

Status BlockDevice::Read(uint64_t offset, void* out, size_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (offset + len > size_) {
    return Status::InvalidArgument("read beyond device end");
  }
  size_t done = 0;
  auto* p = static_cast<uint8_t*>(out);
  while (done < len) {
    const ssize_t n = ::pread(fd_, p + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::IOError("pread failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("unexpected EOF");
    }
    done += static_cast<size_t>(n);
  }
  ThrottleBandwidth(options_.read_mbps, len);
  return Status::OK();
}

Status BlockDevice::SimulateCrash() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (::ftruncate(fd_, static_cast<off_t>(durable_size_)) != 0) {
    return Status::IOError("crash truncate failed");
  }
  size_ = durable_size_;
  return Status::OK();
}

Status BlockDevice::Truncate(uint64_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) {
    return Status::IOError("truncate failed");
  }
  size_ = len;
  if (durable_size_ > len) durable_size_ = len;
  return Status::OK();
}

}  // namespace hyrise_nv::wal
