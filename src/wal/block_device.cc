#include "wal/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "nvm/latency_model.h"

namespace hyrise_nv::wal {

Result<std::unique_ptr<BlockDevice>> BlockDevice::Create(
    const std::string& path, const BlockDeviceOptions& options) {
  auto device =
      std::unique_ptr<BlockDevice>(new BlockDevice(path, options));
  HYRISE_NV_RETURN_NOT_OK(device->Init(/*create=*/true));
  return device;
}

Result<std::unique_ptr<BlockDevice>> BlockDevice::Open(
    const std::string& path, const BlockDeviceOptions& options) {
  auto device =
      std::unique_ptr<BlockDevice>(new BlockDevice(path, options));
  HYRISE_NV_RETURN_NOT_OK(device->Init(/*create=*/false));
  return device;
}

Status BlockDevice::Init(bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open device file " + path_ + ": " +
                           std::strerror(errno));
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    return Status::IOError("lseek failed");
  }
  size_ = static_cast<uint64_t>(end);
  durable_size_ = size_;  // pre-existing contents count as durable
  return Status::OK();
}

BlockDevice::~BlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockDevice::ThrottleBandwidth(double mbps, size_t bytes) {
  if (mbps <= 0) return;
  const double seconds =
      static_cast<double>(bytes) / (mbps * 1024.0 * 1024.0);
  throttled_seconds_ += seconds;
  // Device time, not CPU time: the kernel would block here, so yield.
  nvm::BlockingDelayNanos(static_cast<uint64_t>(seconds * 1e9));
}

Result<uint64_t> BlockDevice::Append(const void* data, size_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint64_t offset = size_;
  auto& injector = FaultInjector::Instance();
  if (injector.any_armed()) {
    if (injector.ShouldFire(FaultPoint::kWalAppendEio)) {
      return Status::IOError("injected EIO on append to " + path_);
    }
    if (injector.ShouldFire(FaultPoint::kWalAppendShortWrite)) {
      // Model a torn write: half the payload reaches the device, then
      // the write errors out. size_ does not advance, so a successful
      // retry overwrites the torn bytes at the same offset.
      const size_t half = len / 2;
      if (half > 0) {
        (void)::pwrite(fd_, data, half, static_cast<off_t>(offset));
      }
      return Status::IOError("injected short write on append to " + path_);
    }
  }
  size_t done = 0;
  const auto* p = static_cast<const uint8_t*>(data);
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, p + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::IOError("pwrite failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  ThrottleBandwidth(options_.write_mbps, len);
  size_ += len;
  return offset;
}

Status BlockDevice::Sync() {
  std::lock_guard<std::mutex> guard(mutex_);
  auto& injector = FaultInjector::Instance();
  if (injector.any_armed() &&
      injector.ShouldFire(FaultPoint::kWalSyncFail)) {
    return Status::IOError("injected fdatasync failure on " + path_);
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed");
  }
  uint64_t stall_ns = 0;
  if (injector.any_armed() &&
      injector.ShouldFire(FaultPoint::kWalSyncStall, &stall_ns)) {
    nvm::BlockingDelayNanos(stall_ns != 0 ? stall_ns : 50'000'000);
  }
  if (options_.sync_latency_us != 0) {
    nvm::BlockingDelayNanos(uint64_t{options_.sync_latency_us} * 1000);
    throttled_seconds_ += options_.sync_latency_us / 1e6;
  }
  durable_size_ = size_;
  return Status::OK();
}

Status BlockDevice::Read(uint64_t offset, void* out, size_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (len > size_ || offset > size_ - len) {
    // Distinguishable from a caller bug: during recovery a read past the
    // device end means the device was truncated (torn log).
    return Status::Corruption(
        "read past device end (offset " + std::to_string(offset) +
        ", len " + std::to_string(len) + ", device size " +
        std::to_string(size_) + "): device truncated or log torn");
  }
  size_t done = 0;
  auto* p = static_cast<uint8_t*>(out);
  while (done < len) {
    const ssize_t n = ::pread(fd_, p + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::IOError("pread failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("unexpected EOF");
    }
    done += static_cast<size_t>(n);
  }
  ThrottleBandwidth(options_.read_mbps, len);
  return Status::OK();
}

Status BlockDevice::SimulateCrash() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (::ftruncate(fd_, static_cast<off_t>(durable_size_)) != 0) {
    return Status::IOError("crash truncate failed");
  }
  size_ = durable_size_;
  return Status::OK();
}

Status BlockDevice::Truncate(uint64_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) {
    return Status::IOError("truncate failed");
  }
  size_ = len;
  if (durable_size_ > len) durable_size_ = len;
  return Status::OK();
}

}  // namespace hyrise_nv::wal
