#ifndef HYRISE_NV_WAL_LOG_MANAGER_H_
#define HYRISE_NV_WAL_LOG_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/table.h"
#include "txn/txn_manager.h"
#include "wal/block_device.h"
#include "wal/checkpoint.h"
#include "wal/log_writer.h"

namespace hyrise_nv::wal {

/// WAL record encodings (the paper-era Hyrise logging formats).
enum class LogFormat {
  kValue,        // full values per insert
  kDictEncoded,  // value ids + incremental dictionary additions
};

struct LogManagerOptions {
  LogFormat format = LogFormat::kValue;
  BlockDeviceOptions device;
  uint32_t sync_every_n_commits = 1;  // 1 = durable per commit; >1 = group
  // I/O error handling: retries with exponential backoff before the
  // writer gives up and degrades to read-only (see LogWriter).
  uint32_t io_max_retries = 4;
  uint32_t io_retry_backoff_us = 50;
  std::string log_path;
  std::string checkpoint_path;
};

/// Coordinates the log-based durability baseline: per-operation records,
/// group-committed commit records (as the engine's CommitHook), and
/// checkpoints.
class LogManager : public txn::CommitHook {
 public:
  /// Starts a fresh log (truncates an existing file).
  static Result<std::unique_ptr<LogManager>> Create(
      const LogManagerOptions& options);

  /// Opens the existing log for continued appending after recovery.
  static Result<std::unique_ptr<LogManager>> OpenExisting(
      const LogManagerOptions& options);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(LogManager);

  /// Logs the insert of `row` (already applied at `loc`). In
  /// dictionary-encoded mode, first emits DictAdd records for dictionary
  /// entries that are new since the last logged state.
  Status LogInsert(storage::Table& table, storage::Tid tid,
                   const std::vector<storage::Value>& row,
                   storage::RowLocation loc);

  Status LogDelete(storage::Table& table, storage::Tid tid,
                   storage::RowLocation loc);

  /// DDL records; synced immediately (DDL is durable on return).
  Status LogCreateTable(storage::Table& table);
  Status LogCreateIndex(uint64_t table_id, uint32_t column, uint32_t kind);

  // txn::CommitHook: commit record + sync policy / abort record. The 2PC
  // prepare record rides the same group-commit path as commits, so one
  // fsync covers a whole batch of prepares and commits.
  Status OnCommit(storage::Cid cid, const txn::Transaction& tx) override;
  Status OnAbort(const txn::Transaction& tx) override;
  Status OnPrepare(uint64_t gtid, const txn::Transaction& tx) override;

  /// Writes a checkpoint of the current state and records the log replay
  /// offset. Also resets dictionary logging watermarks.
  Status WriteCheckpointNow(storage::Catalog& catalog,
                            txn::CommitTable& commit_table);

  /// Re-seeds the dictionary logging watermarks from the current delta
  /// dictionary sizes (after checkpoint load or write).
  void ResetDictWatermarks(storage::Catalog& catalog);

  /// Makes everything logged so far durable.
  Status SyncNow() { return writer_->SyncNow(); }

  BlockDevice& device() { return *device_; }
  LogWriter& writer() { return *writer_; }
  const LogManagerOptions& options() const { return options_; }
  uint64_t bytes_logged() const { return writer_->lsn(); }

 private:
  explicit LogManager(LogManagerOptions options)
      : options_(std::move(options)) {}

  LogManagerOptions options_;
  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<LogWriter> writer_;
  std::mutex mutex_;
  // (table id, column) -> number of delta dictionary entries already
  // logged; volatile, reseeded at checkpoints.
  std::map<std::pair<uint64_t, uint32_t>, uint64_t> dict_logged_;
};

}  // namespace hyrise_nv::wal

#endif  // HYRISE_NV_WAL_LOG_MANAGER_H_
