#include "recovery/recovery_driver.h"

#include <chrono>
#include <mutex>

#include "common/logging.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyrise_nv::recovery {

RecoveryDriver::RecoveryDriver(alloc::PHeap& heap, LogIndex index,
                               RecoveryDriverOptions options)
    : heap_(&heap), options_(std::move(options)) {
  if (options_.drain_chunk_rows == 0) options_.drain_chunk_rows = 1;
  states_.reserve(index.tables.size());
  for (TablePending& pending : index.tables) {
    auto state = std::make_unique<TableState>();
    state->pending = std::move(pending);
    const size_t n = state->pending.rows.size();
    // Value-initialised: every flag starts 0 (unrestored).
    state->restored = std::make_unique<std::atomic<uint8_t>[]>(n);
    total_rows_ += n;
    by_table_[state->pending.table] = state.get();
    states_.push_back(std::move(state));
  }
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kDegradedOpen, total_rows_,
               states_.size());
  }
  obs::MetricsRegistry::Instance()
      .GetGauge("recovery.pending.rows")
      .Set(static_cast<int64_t>(total_rows_));
  PublishProgressGauge();
}

RecoveryDriver::~RecoveryDriver() { StopDrain(); }

void RecoveryDriver::StartDrain(std::function<Status()> finalize) {
  finalize_ = std::move(finalize);
  drain_thread_ = std::thread(&RecoveryDriver::DrainLoop, this);
}

void RecoveryDriver::StopDrain() {
  stop_.store(true, std::memory_order_release);
  if (drain_thread_.joinable()) drain_thread_.join();
}

RecoveryProgress RecoveryDriver::progress() const {
  RecoveryProgress p;
  p.total_rows = total_rows_;
  p.restored_rows =
      std::min(restored_rows_.load(std::memory_order_relaxed), total_rows_);
  p.drained = !serving_degraded();
  return p;
}

RecoveryDriver::TableState* RecoveryDriver::Find(storage::Table* table) {
  auto it = by_table_.find(table);
  return it == by_table_.end() ? nullptr : it->second;
}

Status RecoveryDriver::RestoreRowLocked(TableState& state, uint32_t ordinal,
                                        bool on_demand) {
  // Caller holds the table's write_mutex; the relaxed flag load is
  // race-free under it and makes concurrent restore attempts idempotent.
  if (state.restored[ordinal].load(std::memory_order_relaxed) != 0) {
    return Status::OK();
  }
  PendingRow& row = state.pending.rows[ordinal];
  storage::Table* table = state.pending.table;
  const uint64_t delta_row = state.pending.base_delta_rows + ordinal;
  const size_t columns = table->schema().num_columns();
  // Analysis already encoded every staged row, so a restore is a pure
  // attribute-cell store: it never grows a dictionary, which is what
  // keeps concurrent degraded readers safe on the dictionary vectors.
  for (size_t c = 0; c < columns; ++c) {
    HYRISE_NV_RETURN_NOT_OK(
        table->delta().column(c).RestoreEncodedAt(delta_row, row.ids[c]));
  }
  // The payload is applied; free it — the key maps hold ordinals only.
  row.ids.clear();
  row.ids.shrink_to_fit();
  state.restored[ordinal].store(1, std::memory_order_relaxed);
  // Release: the all-restored fast path's acquire load of these counters
  // must observe the value writes above without taking the mutex.
  state.restored_count.fetch_add(1, std::memory_order_release);
  restored_rows_.fetch_add(1, std::memory_order_release);
  if (on_demand) {
    obs::MetricsRegistry::Instance()
        .GetCounter("recovery.restore.ondemand.rows")
        .Inc();
  } else {
    drain_restored_rows_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status RecoveryDriver::RestoreAllRowsLocked(TableState& state,
                                            bool on_demand) {
  const uint64_t total = state.pending.rows.size();
  for (uint64_t ordinal = 0; ordinal < total; ++ordinal) {
    HYRISE_NV_RETURN_NOT_OK(
        RestoreRowLocked(state, static_cast<uint32_t>(ordinal), on_demand));
  }
  return Status::OK();
}

Status RecoveryDriver::PrepareScanEqual(storage::Table* table, size_t column,
                                        const storage::Value& value) {
  TableState* state = Find(table);
  if (state == nullptr) return Status::OK();
  if (state->restored_count.load(std::memory_order_acquire) ==
      state->pending.rows.size()) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> guard(table->write_mutex());
  auto map_it = state->pending.key_maps.find(static_cast<uint32_t>(column));
  if (map_it == state->pending.key_maps.end()) {
    return RestoreAllRowsLocked(*state, /*on_demand=*/true);
  }
  auto value_it = map_it->second.find(value);
  if (value_it == map_it->second.end()) return Status::OK();
  for (uint32_t ordinal : value_it->second) {
    HYRISE_NV_RETURN_NOT_OK(
        RestoreRowLocked(*state, ordinal, /*on_demand=*/true));
  }
  return Status::OK();
}

Status RecoveryDriver::PrepareScanRange(storage::Table* table, size_t column,
                                        const storage::Value& lo,
                                        const storage::Value& hi) {
  TableState* state = Find(table);
  if (state == nullptr) return Status::OK();
  if (state->restored_count.load(std::memory_order_acquire) ==
      state->pending.rows.size()) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> guard(table->write_mutex());
  auto map_it = state->pending.key_maps.find(static_cast<uint32_t>(column));
  if (map_it == state->pending.key_maps.end()) {
    return RestoreAllRowsLocked(*state, /*on_demand=*/true);
  }
  // std::variant's operator< orders same-type keys exactly like
  // CompareValues; the map uses the same order, so this walk covers
  // every key in [lo, hi].
  for (auto it = map_it->second.lower_bound(lo);
       it != map_it->second.end() && !(hi < it->first); ++it) {
    for (uint32_t ordinal : it->second) {
      HYRISE_NV_RETURN_NOT_OK(
          RestoreRowLocked(*state, ordinal, /*on_demand=*/true));
    }
  }
  return Status::OK();
}

Status RecoveryDriver::RestoreTable(storage::Table* table) {
  TableState* state = Find(table);
  if (state == nullptr) return Status::OK();
  if (state->restored_count.load(std::memory_order_acquire) ==
      state->pending.rows.size()) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> guard(table->write_mutex());
  return RestoreAllRowsLocked(*state, /*on_demand=*/true);
}

void RecoveryDriver::PublishProgressGauge() {
  obs::MetricsRegistry::Instance()
      .GetGauge("recovery.progress.percent")
      .Set(static_cast<int64_t>(progress().percent()));
}

void RecoveryDriver::DrainLoop() {
  const uint64_t start_ticks = obs::FastClock::NowTicks();
  for (auto& state : states_) {
    const uint64_t total = state->pending.rows.size();
    uint64_t cursor = 0;
    while (cursor < total) {
      if (stop_.load(std::memory_order_acquire)) return;
      {
        std::lock_guard<std::mutex> guard(
            state->pending.table->write_mutex());
        uint64_t done = 0;
        while (cursor < total && done < options_.drain_chunk_rows) {
          Status status = RestoreRowLocked(
              *state, static_cast<uint32_t>(cursor), /*on_demand=*/false);
          if (!status.ok()) {
            // Leave the engine degraded: on-demand paths surface the same
            // error per key instead of silently serving a half-restored
            // table as "ready".
            HYRISE_NV_LOG(kError)
                << "recovery drain failed on table '"
                << state->pending.table->name()
                << "' row " << cursor << ": " << status.ToString();
            return;
          }
          ++cursor;
          ++done;
        }
      }
      PublishProgressGauge();
      if (options_.drain_pause_us > 0 && cursor < total) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.drain_pause_us));
      }
    }
  }
  if (stop_.load(std::memory_order_acquire)) return;
  if (finalize_) {
    Status status = finalize_();
    if (!status.ok()) {
      // Stay degraded: a half-built index must never serve a post-flip
      // scan. Degraded scans bypass indexes entirely and every row is
      // restored, so the engine keeps answering correctly — just via the
      // index-free paths.
      HYRISE_NV_LOG(kError)
          << "deferred index build failed after recovery drain: "
          << status.ToString();
      return;
    }
  }
  const uint64_t elapsed_ns = obs::FastClock::TicksToNanos(
      static_cast<int64_t>(obs::FastClock::NowTicks() - start_ticks));
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kRecoveryDrainDone,
               drain_restored_rows_.load(std::memory_order_relaxed),
               elapsed_ns);
  }
  PublishProgressGauge();
  ready_.store(true, std::memory_order_release);
}

}  // namespace hyrise_nv::recovery
