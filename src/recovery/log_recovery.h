#ifndef HYRISE_NV_RECOVERY_LOG_RECOVERY_H_
#define HYRISE_NV_RECOVERY_LOG_RECOVERY_H_

#include <memory>
#include <string>

#include "alloc/pheap.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "txn/txn_manager.h"
#include "wal/log_manager.h"

namespace hyrise_nv::recovery {

/// Phase timings + volumes of a log-based recovery. The three phases are
/// exactly the costs instant restart avoids (experiment E5).
struct LogRecoveryReport {
  double checkpoint_load_seconds = 0;
  double replay_seconds = 0;
  double index_rebuild_seconds = 0;
  double total_seconds = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t replayed_records = 0;
  uint64_t log_bytes_scanned = 0;
  uint64_t committed_txns = 0;
  /// True when the checkpoint file was corrupt and recovery fell back to
  /// replaying the full log from offset 0. Only taken when replay really
  /// covers everything (an empty catalog before replay); a corrupt
  /// checkpoint whose data the log cannot reproduce stays an error.
  bool checkpoint_fallback = false;
  /// Nested timed spans ("log_recovery" root with checkpoint_load /
  /// replay{scan_commits, apply} / index_rebuild children). The phase
  /// seconds above are derived from this tree.
  obs::SpanNode trace;
  /// Serve-during-recovery (AnalyzeLog) opens fill these instead of
  /// replay/index_rebuild: the analysis pass stages `deferred_rows`
  /// pending rows and the engine opens degraded after
  /// `analysis_seconds`; value restoration and index builds happen
  /// on demand / in the background drain.
  bool on_demand = false;
  double analysis_seconds = 0;
  uint64_t deferred_rows = 0;
  /// Prepared-but-undecided 2PC transactions found in the log (a kPrepare
  /// record with no following kCommit/kAbort for the same tid). Replay
  /// leaves their effects invisible but claimed; the engine adopts them
  /// as in-doubt transactions awaiting a coordinator decision.
  struct InDoubtWrite {
    uint64_t table_id;
    storage::RowLocation loc;
    bool invalidate;
  };
  struct InDoubtTxn {
    storage::Tid tid;
    uint64_t gtid;
    std::vector<InDoubtWrite> writes;
  };
  std::vector<InDoubtTxn> in_doubt;
};

/// Records the checkpoint-fallback decision (blackbox event + metric) so
/// forensics can distinguish "checkpoint ignored" restarts from normal
/// ones. Shared by eager replay and the on-demand analysis pass.
void NoteCheckpointFallback(alloc::PHeap& heap);

/// Rebuilds the database state from checkpoint + log into the (freshly
/// formatted) heap:
///  1. load the latest checkpoint, if any;
///  2. two-pass log replay from the checkpoint's offset — pass one finds
///     committed transactions, pass two re-applies *all* inserts (to keep
///     row positions faithful) and stamps only the committed ones;
///  3. rebuild every index (group-key CSR over main + hash over delta).
///
/// Cost is linear in data size: exactly the behaviour experiment E1
/// measures against instant restart.
Result<LogRecoveryReport> RecoverFromLog(alloc::PHeap& heap,
                                         storage::Catalog& catalog,
                                         txn::TxnManager& txn_manager,
                                         const wal::LogManagerOptions& options);

/// Cheap sequential scan: does the log hold any prepared-but-undecided
/// 2PC transaction? Serve-during-recovery opens check this first — an
/// in-doubt transaction needs the full eager replay machinery (claims +
/// write-set reconstruction), so such opens fall back to eager replay
/// (DESIGN.md §16). Returns false when the log does not exist.
Result<bool> LogHasInDoubt(const wal::LogManagerOptions& options);

}  // namespace hyrise_nv::recovery

#endif  // HYRISE_NV_RECOVERY_LOG_RECOVERY_H_
