#include "recovery/nvm_recovery.h"

#include "common/stopwatch.h"

namespace hyrise_nv::recovery {

namespace {

Result<NvmRestartResult> FinishRestart(NvmRestartResult result,
                                       Stopwatch& total) {
  Stopwatch phase;

  // Phase 2: fixups — allocator intent recovery already ran inside
  // PHeap::Open; complete in-flight commits here. Needs the catalog, so
  // bind it first (cheap: offsets only, dictionaries later).
  auto catalog_result = storage::Catalog::Attach(*result.heap);
  if (!catalog_result.ok()) return catalog_result.status();
  result.catalog = std::move(catalog_result).ValueUnsafe();

  auto txn_result = txn::TxnManager::Attach(*result.heap);
  if (!txn_result.ok()) return txn_result.status();
  result.txn_manager = std::move(txn_result).ValueUnsafe();
  HYRISE_NV_RETURN_NOT_OK(
      result.txn_manager->RecoverInFlight(*result.catalog));
  result.report.fixup_seconds = phase.ElapsedSeconds();

  // Phase 3: volatile repair (torn inserts; dictionary dedup maps were
  // rebuilt during catalog attach).
  phase.Restart();
  HYRISE_NV_RETURN_NOT_OK(result.catalog->RepairAfterCrash());
  result.report.attach_seconds = phase.ElapsedSeconds();

  result.report.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace

Result<NvmRestartResult> InstantRestart(
    const nvm::PmemRegionOptions& options) {
  NvmRestartResult result;
  Stopwatch total;
  Stopwatch phase;
  auto heap_result = alloc::PHeap::Open(options);
  if (!heap_result.ok()) return heap_result.status();
  result.heap = std::move(heap_result).ValueUnsafe();
  result.report.map_seconds = phase.ElapsedSeconds();
  result.report.was_clean_shutdown = result.heap->was_clean_shutdown();
  return FinishRestart(std::move(result), total);
}

Result<NvmRestartResult> InstantRestartFromHeap(
    std::unique_ptr<alloc::PHeap> heap) {
  NvmRestartResult result;
  Stopwatch total;
  Stopwatch phase;
  result.heap = std::move(heap);
  HYRISE_NV_RETURN_NOT_OK(result.heap->allocator().Recover());
  result.report.map_seconds = phase.ElapsedSeconds();
  result.report.was_clean_shutdown = false;
  return FinishRestart(std::move(result), total);
}

}  // namespace hyrise_nv::recovery
