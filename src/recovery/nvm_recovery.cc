#include "recovery/nvm_recovery.h"

#include <unordered_set>

namespace hyrise_nv::recovery {

namespace {

Result<NvmRestartResult> FinishRestart(NvmRestartResult result,
                                       obs::SpanTracer& tracer) {
  // Phase 2: fixups — allocator intent recovery already ran inside
  // PHeap::Open; complete in-flight commits here. Needs the catalog, so
  // bind it first (cheap: offsets only, dictionaries later).
  tracer.Begin("fixup");
  tracer.Begin("attach_catalog");
  auto catalog_result = storage::Catalog::Attach(*result.heap);
  if (!catalog_result.ok()) return catalog_result.status();
  result.catalog = std::move(catalog_result).ValueUnsafe();
  tracer.End();

  tracer.Begin("attach_txn_manager");
  auto txn_result = txn::TxnManager::Attach(*result.heap);
  if (!txn_result.ok()) return txn_result.status();
  result.txn_manager = std::move(txn_result).ValueUnsafe();
  tracer.End();

  tracer.Begin("rollforward_commits");
  HYRISE_NV_RETURN_NOT_OK(
      result.txn_manager->RecoverInFlight(*result.catalog));
  tracer.End();
  result.report.fixup_seconds = tracer.End();

  // Phase 3: volatile repair (torn inserts; dictionary dedup maps were
  // rebuilt during catalog attach).
  tracer.Begin("attach");
  tracer.Begin("repair_torn_inserts");
  HYRISE_NV_RETURN_NOT_OK(result.catalog->RepairAfterCrash());
  tracer.End();
  result.report.attach_seconds = tracer.End();

  result.report.trace = tracer.Finish();
  result.report.total_seconds = result.report.trace.seconds;
  return result;
}

}  // namespace

Result<NvmRestartResult> InstantRestart(
    const nvm::PmemRegionOptions& options) {
  NvmRestartResult result;
  obs::SpanTracer tracer("instant_restart");
  tracer.Begin("map");
  auto heap_result = alloc::PHeap::Open(options);
  if (!heap_result.ok()) return heap_result.status();
  result.heap = std::move(heap_result).ValueUnsafe();
  result.report.map_seconds = tracer.End();
  result.report.was_clean_shutdown = result.heap->was_clean_shutdown();
  return FinishRestart(std::move(result), tracer);
}

Result<NvmRestartResult> InstantRestart(const NvmRestartOptions& options) {
  if (options.level == ValidationLevel::kFastHeaderOnly &&
      !options.salvage) {
    return InstantRestart(options.region);
  }

  NvmRestartResult result;
  obs::SpanTracer tracer("instant_restart");
  // Map without mutating: the image must stay byte-identical until we
  // decide it is trustworthy (or decide to serve it read-only).
  tracer.Begin("map");
  auto heap_result = alloc::PHeap::OpenForInspection(options.region);
  if (!heap_result.ok()) return heap_result.status();
  result.heap = std::move(heap_result).ValueUnsafe();
  result.report.map_seconds = tracer.End();
  result.report.was_clean_shutdown = result.heap->was_clean_shutdown();

  tracer.Begin("verify");
  result.report.verify = DeepVerify(result.heap->region());
  result.report.verify_seconds = tracer.End();
  const VerifyReport& verify = result.report.verify;

  if (verify.has_fatal() || (!options.salvage && verify.blocking())) {
    return Status::Corruption("NVM image failed deep verification: " +
                              verify.Summary());
  }

  if (!options.salvage) {
    HYRISE_NV_RETURN_NOT_OK(result.heap->FinishOpen());
    return FinishRestart(std::move(result), tracer);
  }

  // Salvage: bind everything except the tables with findings, and leave
  // the image untouched — no allocator recovery, no in-flight commit
  // rollforward, no torn-insert repair, no dirty mark. The caller must
  // enforce read-only use.
  std::unordered_set<uint64_t> skip;
  for (const auto& finding : verify.findings) {
    if (finding.table_meta_off == 0 ||
        skip.count(finding.table_meta_off)) {
      continue;
    }
    skip.insert(finding.table_meta_off);
    result.quarantined_tables.push_back(finding.table);
  }
  tracer.Begin("attach");
  auto catalog_result = storage::Catalog::Attach(*result.heap, &skip);
  if (!catalog_result.ok()) return catalog_result.status();
  result.catalog = std::move(catalog_result).ValueUnsafe();
  auto txn_result = txn::TxnManager::Attach(*result.heap);
  if (!txn_result.ok()) return txn_result.status();
  result.txn_manager = std::move(txn_result).ValueUnsafe();
  result.report.attach_seconds = tracer.End();
  result.salvage_read_only = true;
  result.report.trace = tracer.Finish();
  result.report.total_seconds = result.report.trace.seconds;
  return result;
}

Result<NvmRestartResult> InstantRestartFromHeap(
    std::unique_ptr<alloc::PHeap> heap) {
  NvmRestartResult result;
  obs::SpanTracer tracer("instant_restart");
  tracer.Begin("map");
  result.heap = std::move(heap);
  HYRISE_NV_RETURN_NOT_OK(result.heap->allocator().Recover());
  result.heap->AttachBlackbox();
  result.report.map_seconds = tracer.End();
  result.report.was_clean_shutdown = false;
  return FinishRestart(std::move(result), tracer);
}

}  // namespace hyrise_nv::recovery
