#ifndef HYRISE_NV_RECOVERY_LOG_INDEX_H_
#define HYRISE_NV_RECOVERY_LOG_INDEX_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "alloc/pheap.h"
#include "recovery/log_recovery.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "txn/txn_manager.h"
#include "wal/checkpoint.h"
#include "wal/log_manager.h"

namespace hyrise_nv::recovery {

/// One unreplayed insert: the logged payload of a placeholder delta row
/// whose MVCC state is already final. Value-logged rows are encoded into
/// the delta dictionaries during analysis, so both log formats stage as
/// ids and the dictionaries are read-only for the whole degraded window
/// (restores are pure attribute-cell stores that never race a reader on
/// dictionary growth).
struct PendingRow {
  std::vector<storage::ValueId> ids;
};

/// Per-table slice of the log index. Pending ordinal i corresponds to
/// delta row `base_delta_rows + i`; the placeholder rows already exist in
/// the table (attribute cells hold kInvalidValueId) with their final
/// MVCC stamps, so visibility, counts, and deletes are correct before a
/// single value is restored.
struct TablePending {
  storage::Table* table = nullptr;
  uint64_t table_id = 0;
  uint64_t base_delta_rows = 0;
  std::vector<PendingRow> rows;
  /// Per key column: value -> pending ordinals, ordered so range scans
  /// can walk [lo, hi]. Built for every logged/checkpointed indexed
  /// column (column 0 when the table has none), so degraded point and
  /// range scans restore only the rows they touch. Scans on other
  /// columns fall back to restoring the whole table.
  std::unordered_map<uint32_t,
                     std::map<storage::Value, std::vector<uint32_t>>>
      key_maps;
};

/// Result of the analysis pass: everything the RecoveryDriver needs to
/// serve degraded and drain the rest in the background.
struct LogIndex {
  std::vector<TablePending> tables;
  /// Index builds deferred to drain completion (eager replay's phase 3
  /// runs them before serving; on-demand runs them after the last row is
  /// restored, since a group-key/hash build must see real values).
  std::vector<wal::CheckpointInfo::IndexedColumn> indexed_columns;
  uint64_t total_pending_rows = 0;
  LogRecoveryReport report;
};

/// Serve-during-recovery analysis pass. Mirrors RecoverFromLog's phase
/// structure — checkpoint load (with the same corrupt-checkpoint
/// fallback), then a two-pass log scan — but instead of eagerly applying
/// insert values it:
///  - applies DDL (create table), every dictionary add (dictionary order
///    is on-wire state the dict-encoded log depends on), and committed
///    deletes eagerly, and encodes value-logged payloads into the delta
///    dictionaries in log order (same contents eager replay builds), so
///    dictionaries are complete — and thereafter read-only — before the
///    engine serves a single degraded query;
///  - appends each logged insert as a placeholder row whose MVCC entry
///    already carries its final begin/end stamps (committed map applied,
///    deletes folded in), keeping logged row positions faithful;
///  - stages the insert payloads in a per-table / per-key index of
///    unreplayed records for the RecoveryDriver.
/// After AnalyzeLog the engine can open in kServingDegraded: counts and
/// visibility are exact, only value reads need on-demand restoration.
Result<LogIndex> AnalyzeLog(alloc::PHeap& heap, storage::Catalog& catalog,
                            txn::TxnManager& txn_manager,
                            const wal::LogManagerOptions& options);

}  // namespace hyrise_nv::recovery

#endif  // HYRISE_NV_RECOVERY_LOG_INDEX_H_
