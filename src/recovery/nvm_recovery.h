#ifndef HYRISE_NV_RECOVERY_NVM_RECOVERY_H_
#define HYRISE_NV_RECOVERY_NVM_RECOVERY_H_

#include <memory>

#include "alloc/pheap.h"
#include "storage/catalog.h"
#include "txn/txn_manager.h"

namespace hyrise_nv::recovery {

/// Phase timings of an instant restart. Every phase is O(1) or
/// O(in-flight work + delta dictionary), never O(database size) — the
/// property experiment E1/E5 measures.
struct NvmRecoveryReport {
  double map_seconds = 0;       // open + map the region, header check
  double fixup_seconds = 0;     // allocator intents + in-flight commits
  double attach_seconds = 0;    // catalog bind, delta dict map rebuild,
                                // torn-insert repair
  double total_seconds = 0;
  bool was_clean_shutdown = false;
};

/// Result of an instant restart: all engine components bound to the
/// recovered NVM state.
struct NvmRestartResult {
  std::unique_ptr<alloc::PHeap> heap;
  std::unique_ptr<storage::Catalog> catalog;
  std::unique_ptr<txn::TxnManager> txn_manager;
  NvmRecoveryReport report;
};

/// The paper's headline operation: opens the NVM region and is ready to
/// answer queries without reading a log or a checkpoint.
///
///  1. map the region, validate the header (constant work);
///  2. recover allocator intents and roll in-flight commits forward
///     (proportional to in-flight work at crash time, not to data);
///  3. attach the catalog — rebinds table handles, repairs torn inserts,
///     rebuilds the delta dictionaries' volatile dedup maps
///     (proportional to the delta, which merge keeps small).
Result<NvmRestartResult> InstantRestart(
    const nvm::PmemRegionOptions& options);

/// Same, over an already-opened heap (used for in-process crash
/// simulation where the region object survives).
Result<NvmRestartResult> InstantRestartFromHeap(
    std::unique_ptr<alloc::PHeap> heap);

}  // namespace hyrise_nv::recovery

#endif  // HYRISE_NV_RECOVERY_NVM_RECOVERY_H_
