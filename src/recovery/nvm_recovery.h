#ifndef HYRISE_NV_RECOVERY_NVM_RECOVERY_H_
#define HYRISE_NV_RECOVERY_NVM_RECOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "alloc/pheap.h"
#include "obs/trace.h"
#include "recovery/verify.h"
#include "storage/catalog.h"
#include "txn/txn_manager.h"

namespace hyrise_nv::recovery {

/// Phase timings of an instant restart. Every phase is O(1) or
/// O(in-flight work + delta dictionary), never O(database size) — the
/// property experiment E1/E5 measures. kDeep validation adds an
/// O(database) verify phase by design; the hot path stays
/// kFastHeaderOnly.
struct NvmRecoveryReport {
  double map_seconds = 0;       // open + map the region, header check
  double verify_seconds = 0;    // deep verification (kDeep only)
  double fixup_seconds = 0;     // allocator intents + in-flight commits
  double attach_seconds = 0;    // catalog bind, delta dict map rebuild,
                                // torn-insert repair
  double total_seconds = 0;
  bool was_clean_shutdown = false;
  VerifyReport verify;          // populated when kDeep ran
  /// Nested timed spans of the restart ("instant_restart" root with
  /// map / verify / fixup / attach children). The phase seconds above
  /// are derived from this tree.
  obs::SpanNode trace;
};

/// Result of an instant restart: all engine components bound to the
/// recovered NVM state.
struct NvmRestartResult {
  std::unique_ptr<alloc::PHeap> heap;
  std::unique_ptr<storage::Catalog> catalog;
  std::unique_ptr<txn::TxnManager> txn_manager;
  NvmRecoveryReport report;
  /// Tables quarantined by salvage (failed deep verification).
  std::vector<std::string> quarantined_tables;
  /// True when the restart ran in salvage mode: the image was never
  /// marked dirty and must be served read-only.
  bool salvage_read_only = false;
};

/// How to open the image.
struct NvmRestartOptions {
  nvm::PmemRegionOptions region;
  ValidationLevel level = ValidationLevel::kFastHeaderOnly;
  /// With kDeep: instead of failing on table-scoped findings, quarantine
  /// the affected tables and serve the rest read-only. Fatal findings
  /// still fail. Implies the image is not mutated (no allocator
  /// recovery, no in-flight commit rollforward, no dirty mark).
  bool salvage = false;
};

/// The paper's headline operation: opens the NVM region and is ready to
/// answer queries without reading a log or a checkpoint.
///
///  1. map the region, validate the header (constant work);
///  2. recover allocator intents and roll in-flight commits forward
///     (proportional to in-flight work at crash time, not to data);
///  3. attach the catalog — rebinds table handles, repairs torn inserts,
///     rebuilds the delta dictionaries' volatile dedup maps
///     (proportional to the delta, which merge keeps small).
Result<NvmRestartResult> InstantRestart(
    const nvm::PmemRegionOptions& options);

/// Instant restart with a validation level and optional salvage mode.
/// Returns Corruption when verification fails (always for fatal
/// findings; for any finding when salvage is off).
Result<NvmRestartResult> InstantRestart(const NvmRestartOptions& options);

/// Same, over an already-opened heap (used for in-process crash
/// simulation where the region object survives).
Result<NvmRestartResult> InstantRestartFromHeap(
    std::unique_ptr<alloc::PHeap> heap);

}  // namespace hyrise_nv::recovery

#endif  // HYRISE_NV_RECOVERY_NVM_RECOVERY_H_
