#include "recovery/log_index.h"

#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "nvm/nvm_env.h"
#include "wal/log_reader.h"

namespace hyrise_nv::recovery {

namespace {

using storage::Cid;
using storage::Tid;

/// Mutable per-table accumulation during the scan: the pending payloads
/// plus the staged MVCC entries (deletes fold into these before the
/// placeholder rows are appended in one bulk step at the end).
struct StagedTable {
  TablePending pending;
  std::vector<storage::MvccEntry> mvcc;
};

}  // namespace

Result<LogIndex> AnalyzeLog(alloc::PHeap& heap, storage::Catalog& catalog,
                            txn::TxnManager& txn_manager,
                            const wal::LogManagerOptions& options) {
  LogIndex out;
  LogRecoveryReport& report = out.report;
  report.on_demand = true;
  obs::SpanTracer tracer("log_analysis");

  // Phase 1: checkpoint load — identical to eager replay, including the
  // corrupt-checkpoint fallback.
  tracer.Begin("checkpoint_load");
  uint64_t replay_offset = 0;
  {
    auto info_result =
        wal::LoadCheckpoint(options.checkpoint_path, options.device, heap,
                            catalog, txn_manager.commit_table());
    if (info_result.ok()) {
      replay_offset = info_result->log_offset;
      report.checkpoint_bytes = info_result->bytes;
      out.indexed_columns = info_result->indexed_columns;
    } else if (info_result.status().IsCorruption() &&
               catalog.num_tables() == 0) {
      HYRISE_NV_LOG(kWarn)
          << "checkpoint is corrupt ("
          << info_result.status().ToString()
          << "); falling back to full log analysis from offset 0";
      report.checkpoint_fallback = true;
      NoteCheckpointFallback(heap);
    } else if (!info_result.status().IsNotFound()) {
      return info_result.status();
    }
  }
  report.checkpoint_load_seconds = tracer.End();

  // Phase 2: two-pass log scan. Pass one finds commits (as eager replay
  // does); pass two applies DDL / dictionary adds / MVCC state eagerly
  // and stages insert payloads instead of applying them.
  tracer.Begin("analysis");
  if (nvm::FileExists(options.log_path)) {
    auto device_result =
        wal::BlockDevice::Open(options.log_path, options.device);
    if (!device_result.ok()) return device_result.status();
    wal::BlockDevice& device = **device_result;
    report.log_bytes_scanned =
        device.size() > replay_offset ? device.size() - replay_offset : 0;

    std::unordered_map<Tid, Cid> committed;
    Cid max_cid = 0;
    Tid max_tid = 0;
    {
      tracer.Begin("scan_commits");
      wal::LogReader reader(&device);
      auto scan = reader.ForEach(
          replay_offset, [&](const wal::LogRecord& record) -> Status {
            max_tid = std::max(max_tid, record.tid);
            if (record.type == wal::RecordType::kCommit) {
              committed.emplace(record.tid, record.cid);
              max_cid = std::max(max_cid, record.cid);
            }
            return Status::OK();
          });
      if (!scan.ok()) return scan.status();
      tracer.End();
    }

    tracer.Begin("build_index");
    auto& region = heap.region();
    std::vector<StagedTable> staged;
    std::unordered_map<uint64_t, size_t> staged_by_id;
    auto staged_for = [&](uint64_t table_id) -> Result<StagedTable*> {
      auto it = staged_by_id.find(table_id);
      if (it != staged_by_id.end()) return &staged[it->second];
      auto table = catalog.GetTableById(table_id);
      if (!table.ok()) return table.status();
      staged_by_id.emplace(table_id, staged.size());
      staged.emplace_back();
      StagedTable& entry = staged.back();
      entry.pending.table = *table;
      entry.pending.table_id = table_id;
      // Placeholders are only appended after the scan, so the current
      // delta row count stays the staging base for the whole pass.
      entry.pending.base_delta_rows = (*table)->delta_row_count();
      return &entry;
    };

    wal::LogReader reader(&device);
    auto analyze = [&](const wal::LogRecord& record) -> Status {
      switch (record.type) {
        case wal::RecordType::kInsert: {
          HYRISE_NV_ASSIGN_OR_RETURN(StagedTable * entry,
                                     staged_for(record.table_id));
          storage::Table* table = entry->pending.table;
          if (record.values.size() != table->schema().num_columns()) {
            return Status::Corruption("logged insert arity mismatch");
          }
          // Encode now, while analysis is single-threaded: GetOrInsert in
          // log order builds the same dictionaries eager replay would,
          // and after this pass they are read-only until the drain
          // finishes — restores become plain cell stores.
          std::vector<storage::ValueId> ids;
          ids.reserve(record.values.size());
          for (size_t c = 0; c < record.values.size(); ++c) {
            auto id = table->delta().column(c).dictionary().GetOrInsert(
                record.values[c]);
            if (!id.ok()) return id.status();
            ids.push_back(*id);
          }
          storage::MvccEntry mvcc;
          mvcc.begin = storage::kCidInfinity;
          mvcc.end = storage::kCidInfinity;
          mvcc.tid = record.tid;
          auto it = committed.find(record.tid);
          if (it != committed.end()) {
            mvcc.begin = it->second;
            mvcc.tid = storage::kTidNone;
          }
          entry->mvcc.push_back(mvcc);
          entry->pending.rows.push_back(PendingRow{std::move(ids)});
          break;
        }
        case wal::RecordType::kInsertEncoded: {
          HYRISE_NV_ASSIGN_OR_RETURN(StagedTable * entry,
                                     staged_for(record.table_id));
          storage::Table* table = entry->pending.table;
          if (record.value_ids.size() != table->schema().num_columns()) {
            return Status::InvalidArgument("encoded row arity mismatch");
          }
          for (size_t c = 0; c < record.value_ids.size(); ++c) {
            // Dictionary adds precede the inserts that use them in the
            // log and are applied eagerly, so the bound is already final.
            if (record.value_ids[c] >=
                table->delta().column(c).dictionary().size()) {
              return Status::Corruption("encoded id beyond dictionary");
            }
          }
          storage::MvccEntry mvcc;
          mvcc.begin = storage::kCidInfinity;
          mvcc.end = storage::kCidInfinity;
          mvcc.tid = record.tid;
          auto it = committed.find(record.tid);
          if (it != committed.end()) {
            mvcc.begin = it->second;
            mvcc.tid = storage::kTidNone;
          }
          entry->mvcc.push_back(mvcc);
          entry->pending.rows.push_back(PendingRow{record.value_ids});
          break;
        }
        case wal::RecordType::kDictAdd: {
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          if (record.column >= (*table)->schema().num_columns()) {
            return Status::Corruption("dict-add column out of range");
          }
          auto id = (*table)
                        ->delta()
                        .column(record.column)
                        .dictionary()
                        .GetOrInsert(record.dict_value);
          if (!id.ok()) return id.status();
          break;
        }
        case wal::RecordType::kDelete: {
          auto it = committed.find(record.tid);
          if (it == committed.end()) break;  // uncommitted delete: no-op
          HYRISE_NV_ASSIGN_OR_RETURN(StagedTable * entry,
                                     staged_for(record.table_id));
          storage::Table* table = entry->pending.table;
          if (record.loc.in_main ||
              record.loc.row < entry->pending.base_delta_rows) {
            // The row exists from the checkpoint: stamp storage directly,
            // exactly as eager replay does.
            const uint64_t rows = record.loc.in_main
                                      ? table->main_row_count()
                                      : entry->pending.base_delta_rows;
            if (record.loc.row >= rows) {
              return Status::Corruption(
                  "logged delete references bad row");
            }
            auto* mvcc = table->mvcc(record.loc);
            mvcc->end = it->second;
            mvcc->tid = storage::kTidNone;
            region.Persist(mvcc, sizeof(*mvcc));
          } else {
            // The delete targets a row staged earlier in this scan: fold
            // the end stamp into the staged entry before it is appended.
            const uint64_t ordinal =
                record.loc.row - entry->pending.base_delta_rows;
            if (ordinal >= entry->mvcc.size()) {
              return Status::Corruption(
                  "logged delete references bad row");
            }
            entry->mvcc[ordinal].end = it->second;
            entry->mvcc[ordinal].tid = storage::kTidNone;
          }
          break;
        }
        case wal::RecordType::kCreateTable: {
          auto schema_result = storage::Schema::Deserialize(
              record.schema_blob.data(), record.schema_blob.size());
          if (!schema_result.ok()) return schema_result.status();
          HYRISE_NV_RETURN_NOT_OK(
              catalog
                  .RestoreTable(record.table_name, *schema_result,
                                record.table_id)
                  .status());
          break;
        }
        case wal::RecordType::kCreateIndex: {
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          out.indexed_columns.push_back(
              {(*table)->name(), record.column, record.index_kind});
          break;
        }
        case wal::RecordType::kCommit:
        case wal::RecordType::kAbort:
          break;
      }
      ++report.replayed_records;
      return Status::OK();
    };
    auto scan = reader.ForEach(replay_offset, analyze);
    if (!scan.ok()) return scan.status();
    tracer.End();

    report.committed_txns = committed.size();

    // Append the staged placeholder rows and build the per-key index.
    tracer.Begin("reserve");
    std::unordered_map<std::string, std::set<uint32_t>> key_columns;
    for (const auto& indexed : out.indexed_columns) {
      key_columns[indexed.table].insert(
          static_cast<uint32_t>(indexed.column));
    }
    for (StagedTable& entry : staged) {
      if (entry.pending.rows.empty()) continue;
      storage::Table* table = entry.pending.table;
      HYRISE_NV_RETURN_NOT_OK(table->ReservePlaceholderRows(entry.mvcc));
      std::set<uint32_t> cols;
      auto kit = key_columns.find(table->name());
      if (kit != key_columns.end()) cols = kit->second;
      if (cols.empty()) cols.insert(0);
      for (uint32_t col : cols) {
        if (col >= table->schema().num_columns()) continue;
        auto& key_map = entry.pending.key_maps[col];
        const auto& dict = table->delta().column(col).dictionary();
        for (uint32_t ordinal = 0;
             ordinal < static_cast<uint32_t>(entry.pending.rows.size());
             ++ordinal) {
          const PendingRow& row = entry.pending.rows[ordinal];
          key_map[dict.GetValue(row.ids[col])].push_back(ordinal);
        }
      }
      out.total_pending_rows += entry.pending.rows.size();
      report.deferred_rows += entry.pending.rows.size();
      out.tables.push_back(std::move(entry.pending));
    }
    tracer.End();

    // Advance transaction state beyond anything the log used.
    auto* block = txn_manager.commit_table().block();
    if (max_cid >= block->commit_watermark) {
      region.AtomicPersist64(&block->commit_watermark, max_cid);
    }
    if (max_cid + 1 > block->cid_block) {
      region.AtomicPersist64(&block->cid_block, max_cid + 1);
    }
    if (max_tid + 1 > block->tid_block) {
      region.AtomicPersist64(&block->tid_block, max_tid + 1);
    }
  }
  report.analysis_seconds = tracer.End();
  report.trace = tracer.Finish();
  report.total_seconds = report.trace.seconds;
  return out;
}

}  // namespace hyrise_nv::recovery
