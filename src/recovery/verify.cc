#include "recovery/verify.h"

#include <cstddef>
#include <cstring>
#include <set>
#include <string>
#include <unordered_set>

#include "alloc/pallocator.h"
#include "alloc/pvector.h"
#include "alloc/region_header.h"
#include "common/bit_util.h"
#include "common/crc32.h"
#include "index/delta_index.h"
#include "obs/blackbox.h"
#include "storage/catalog.h"
#include "storage/checksums.h"
#include "storage/dictionary.h"
#include "storage/layout.h"
#include "storage/schema.h"
#include "storage/types.h"
#include "txn/commit_table.h"

namespace hyrise_nv::recovery {

namespace {

using alloc::PVectorDesc;
using storage::DataType;
using storage::MvccEntry;
using storage::PDeltaColumnMeta;
using storage::PIndexMeta;
using storage::PMainColumnMeta;
using storage::PTableGroup;
using storage::PTableMeta;
using storage::SealTag;

/// Walk state threaded through the verifier.
struct Ctx {
  const nvm::PmemRegion* region = nullptr;
  VerifyReport* report = nullptr;
  /// Exclusive upper bounds for MVCC stamps, taken from the commit table
  /// when it is healthy (infinity otherwise, so a broken commit table
  /// does not cascade into per-row findings).
  uint64_t tid_bound = UINT64_MAX;
  uint64_t cid_bound = UINT64_MAX;
  bool sealed = false;
  std::string table_name;    // empty = region-global scope
  uint64_t table_off = 0;
};

void AddFinding(Ctx& ctx, const std::string& structure,
                FindingSeverity severity, std::string detail) {
  VerifyFinding finding;
  finding.structure = structure;
  finding.table = ctx.table_name;
  finding.table_meta_off = ctx.table_off;
  finding.severity = severity;
  finding.detail = std::move(detail);
  ctx.report->findings.push_back(std::move(finding));
}

/// Resolves `count` objects of type T at `off`, or nullptr when the range
/// is missing, misaligned, or out of bounds.
template <typename T>
const T* At(const nvm::PmemRegion& region, uint64_t off, uint64_t count) {
  if (off == 0 || off % 8 != 0) return nullptr;
  if (count != 0 && count > region.size() / sizeof(T)) return nullptr;
  const uint64_t bytes = count * sizeof(T);
  if (off > region.size() || bytes > region.size() - off) return nullptr;
  return reinterpret_cast<const T*>(region.base() + off);
}

/// Committed content pointer of a descriptor, or nullptr when the
/// descriptor is structurally unusable.
const uint8_t* ContentOf(const nvm::PmemRegion& region,
                         const PVectorDesc& desc, uint64_t elem_size) {
  const auto& slot = desc.slots[desc.version & 1];
  if (desc.size == 0 || desc.size > slot.capacity) return nullptr;
  if (slot.data < alloc::PAllocator::HeapBegin() || slot.data % 8 != 0) {
    return nullptr;
  }
  const uint64_t bytes = desc.size * elem_size;
  if (elem_size != 0 && bytes / elem_size != desc.size) return nullptr;
  if (slot.data > region.size() || bytes > region.size() - slot.data) {
    return nullptr;
  }
  return region.base() + slot.data;
}

/// Structural + seal check of one descriptor. Returns false (and records
/// a finding) when the committed content is unusable.
bool CheckDesc(Ctx& ctx, const PVectorDesc& desc, uint64_t elem_size,
               const std::string& what) {
  ++ctx.report->structures_checked;
  bool healthy = true;
  const auto& slot = desc.slots[desc.version & 1];
  if (desc.size > slot.capacity) {
    AddFinding(ctx, "pvector_descriptor", FindingSeverity::kTable,
               what + ": size " + std::to_string(desc.size) +
                   " exceeds capacity " + std::to_string(slot.capacity));
    healthy = false;
  } else if (slot.capacity > 0) {
    const uint64_t bytes = slot.capacity * elem_size;
    const bool overflow =
        elem_size != 0 && bytes / elem_size != slot.capacity;
    if (slot.data < alloc::PAllocator::HeapBegin() ||
        slot.data % 8 != 0 || overflow || slot.data > ctx.region->size() ||
        bytes > ctx.region->size() - slot.data) {
      AddFinding(ctx, "pvector_descriptor", FindingSeverity::kTable,
                 what + ": buffer at " + std::to_string(slot.data) +
                     " (capacity " + std::to_string(slot.capacity) +
                     ") out of range");
      healthy = false;
    }
  }
  if (healthy && ctx.sealed && desc.seal != 0 &&
      desc.seal != storage::ComputePVectorDescSeal(desc)) {
    AddFinding(ctx, "pvector_descriptor", FindingSeverity::kTable,
               what + ": descriptor seal mismatch");
    healthy = false;
  }
  return healthy;
}

uint64_t AllocMetaSeal(const alloc::AllocMeta& meta) {
  return SealTag(
      Crc32c(&meta, offsetof(alloc::AllocMeta, meta_crc)));
}

uint64_t TxnBlockSeal(const txn::PTxnStateBlock& block) {
  return SealTag(
      Crc32c(&block, offsetof(txn::PTxnStateBlock, block_crc)));
}

/// Reads the length-prefixed string at `off` inside a raw blob; returns
/// false on bounds violations.
bool ReadBlobString(const uint8_t* blob, uint64_t blob_size, uint64_t off,
                    std::string_view* out) {
  if (off > blob_size || blob_size - off < 4) return false;
  uint32_t len;
  std::memcpy(&len, blob + off, 4);
  if (len > blob_size - off - 4) return false;
  *out = std::string_view(reinterpret_cast<const char*>(blob + off + 4),
                          len);
  return true;
}

void VerifyAllocator(Ctx& ctx) {
  const auto& region = *ctx.region;
  const auto* meta =
      At<alloc::AllocMeta>(region, alloc::PAllocator::MetaOffset(), 1);
  ++ctx.report->structures_checked;
  if (meta == nullptr) {
    AddFinding(ctx, "allocator_meta", FindingSeverity::kFatal,
               "allocator metadata outside region");
    return;
  }
  const uint64_t heap_begin = alloc::PAllocator::HeapBegin();
  const uint64_t expected_end =
      region.size() - obs::BlackboxBytesFor(region.size());
  if (meta->heap_top < heap_begin || meta->heap_top > meta->heap_end ||
      meta->heap_end != expected_end) {
    AddFinding(ctx, "allocator_meta", FindingSeverity::kWriteHazard,
               "heap bounds out of range: top " +
                   std::to_string(meta->heap_top) + ", end " +
                   std::to_string(meta->heap_end));
    return;
  }
  if (ctx.sealed && meta->meta_crc != 0 &&
      meta->meta_crc != AllocMetaSeal(*meta)) {
    AddFinding(ctx, "allocator_meta", FindingSeverity::kWriteHazard,
               "allocator metadata seal mismatch");
    return;
  }
  // Free-list walk: every block must be a valid free block of its class.
  const uint64_t max_steps = region.size() / alloc::kMinClassSize + 1;
  for (size_t cls = 0; cls < alloc::kNumSizeClasses; ++cls) {
    const uint64_t cls_size = alloc::kMinClassSize << cls;
    uint64_t off = meta->free_heads[cls];
    uint64_t steps = 0;
    while (off != 0) {
      if (++steps > max_steps) {
        AddFinding(ctx, "allocator_meta", FindingSeverity::kWriteHazard,
                   "free list of class " + std::to_string(cls) +
                       " contains a cycle");
        return;
      }
      const auto* block = At<alloc::BlockHeader>(region, off, 1);
      if (block == nullptr || off % 64 != 0 || off < heap_begin ||
          off + sizeof(alloc::BlockHeader) > meta->heap_top) {
        AddFinding(ctx, "allocator_meta", FindingSeverity::kWriteHazard,
                   "free list of class " + std::to_string(cls) +
                       " points outside the heap (offset " +
                       std::to_string(off) + ")");
        return;
      }
      if (block->magic != alloc::BlockHeader::kMagicValue ||
          block->state != alloc::BlockHeader::kStateFree ||
          block->size != cls_size) {
        AddFinding(ctx, "allocator_meta", FindingSeverity::kWriteHazard,
                   "free list of class " + std::to_string(cls) +
                       " holds an invalid block at offset " +
                       std::to_string(off));
        return;
      }
      off = block->next;
    }
  }
}

void VerifyCommitTable(Ctx& ctx) {
  const auto& region = *ctx.region;
  ++ctx.report->structures_checked;
  auto root_result = alloc::GetRoot(region, txn::kTxnStateRootName);
  if (!root_result.ok()) {
    AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
               "txn_state root missing: " +
                   root_result.status().ToString());
    return;
  }
  const auto* block = At<txn::PTxnStateBlock>(region, *root_result, 1);
  if (block == nullptr) {
    AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
               "transaction state block outside region");
    return;
  }
  bool healthy = true;
  if (ctx.sealed && block->block_crc != 0 &&
      block->block_crc != TxnBlockSeal(*block)) {
    AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
               "transaction state seal mismatch");
    healthy = false;
  }
  if (block->tid_block == 0 || block->cid_block == 0) {
    AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
               "TID/CID block counters are zero");
    healthy = false;
  }
  if (block->commit_watermark >= block->cid_block + txn::kTidBlockSize) {
    AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
               "commit watermark " +
                   std::to_string(block->commit_watermark) +
                   " beyond the claimed CID space (cid_block " +
                   std::to_string(block->cid_block) + ")");
    healthy = false;
  }
  for (const auto& slot : block->slots) {
    if (slot.state != txn::PCommitSlot::kFree &&
        slot.state != txn::PCommitSlot::kCommitting &&
        slot.state != txn::PCommitSlot::kPrepared) {
      AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
                 "commit slot in impossible state " +
                     std::to_string(slot.state));
      healthy = false;
      continue;
    }
    if (slot.state == txn::PCommitSlot::kPrepared) {
      // In-doubt 2PC transaction: no CID yet, but the touch list and the
      // owning TID must be sound for later decide-commit/abort.
      if (slot.tid == 0 || slot.touch_count > slot.touch_capacity ||
          (slot.touch_count > 0 &&
           At<txn::TouchEntry>(region, slot.touch_off, slot.touch_count) ==
               nullptr)) {
        AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
                   "prepared commit slot is inconsistent (gtid " +
                       std::to_string(slot.gtid) + ")");
        healthy = false;
      }
      continue;
    }
    if (slot.state != txn::PCommitSlot::kCommitting) continue;
    if (slot.cid >= block->cid_block + txn::kTidBlockSize ||
        slot.touch_count > slot.touch_capacity ||
        (slot.touch_count > 0 &&
         At<txn::TouchEntry>(region, slot.touch_off, slot.touch_count) ==
             nullptr)) {
      AddFinding(ctx, "commit_table", FindingSeverity::kFatal,
                 "in-flight commit slot is inconsistent (cid " +
                     std::to_string(slot.cid) + ")");
      healthy = false;
    }
  }
  if (healthy) {
    // CIDs/TIDs are issued from claimed blocks, so every valid stamp is
    // below the next unclaimed block plus one block of slack for a claim
    // that persisted mid-crash.
    ctx.cid_bound = block->cid_block + txn::kTidBlockSize;
    ctx.tid_bound = block->tid_block + txn::kTidBlockSize;
  }
}

void VerifyMvcc(Ctx& ctx, const PTableGroup& group) {
  ++ctx.report->structures_checked;
  const bool main_ok =
      CheckDesc(ctx, group.main_mvcc, sizeof(MvccEntry), "main mvcc");
  const bool delta_ok =
      CheckDesc(ctx, group.delta_mvcc, sizeof(MvccEntry), "delta mvcc");
  if (main_ok && group.main_row_count != group.main_mvcc.size) {
    AddFinding(ctx, "mvcc", FindingSeverity::kTable,
               "main_row_count " + std::to_string(group.main_row_count) +
                   " != main mvcc size " +
                   std::to_string(group.main_mvcc.size));
  }
  auto check_entries = [&](const PVectorDesc& desc, const char* side) {
    const auto* entries = reinterpret_cast<const MvccEntry*>(
        ContentOf(*ctx.region, desc, sizeof(MvccEntry)));
    if (entries == nullptr) return;
    for (uint64_t r = 0; r < desc.size; ++r) {
      const MvccEntry& e = entries[r];
      if (e.begin != storage::kCidInfinity && e.begin >= ctx.cid_bound) {
        AddFinding(ctx, "mvcc", FindingSeverity::kTable,
                   std::string(side) + " row " + std::to_string(r) +
                       ": begin CID " + std::to_string(e.begin) +
                       " beyond issued CID space");
        return;
      }
      if (e.end != storage::kCidInfinity && e.end != 0 &&
          e.end >= ctx.cid_bound) {
        AddFinding(ctx, "mvcc", FindingSeverity::kTable,
                   std::string(side) + " row " + std::to_string(r) +
                       ": end CID " + std::to_string(e.end) +
                       " beyond issued CID space");
        return;
      }
      if (e.tid != storage::kTidNone && e.tid >= ctx.tid_bound) {
        AddFinding(ctx, "mvcc", FindingSeverity::kTable,
                   std::string(side) + " row " + std::to_string(r) +
                       ": TID " + std::to_string(e.tid) +
                       " beyond issued TID space");
        return;
      }
    }
  };
  if (main_ok) check_entries(group.main_mvcc, "main");
  if (delta_ok) check_entries(group.delta_mvcc, "delta");
  if (main_ok && delta_ok && ctx.sealed && group.mvcc_seal != 0 &&
      group.mvcc_seal !=
          storage::ComputeGroupMvccSeal(*ctx.region, group)) {
    AddFinding(ctx, "mvcc", FindingSeverity::kTable,
               "MVCC content seal mismatch");
  }
}

void VerifyMainColumn(Ctx& ctx, const PMainColumnMeta& col, DataType type,
                      uint64_t rows, uint64_t column) {
  const auto& region = *ctx.region;
  const std::string where = "main column " + std::to_string(column);
  const bool values_ok =
      CheckDesc(ctx, col.dict_values, 8, where + " dict values");
  const bool blob_ok =
      CheckDesc(ctx, col.dict_blob, 1, where + " dict blob");
  const bool words_ok =
      CheckDesc(ctx, col.attr_words, 8, where + " attr words");
  CheckDesc(ctx, col.gk_offsets, 8, where + " gk offsets");
  CheckDesc(ctx, col.gk_positions, 8, where + " gk positions");

  // Dictionary: strictly sorted; string entries inside the blob. The
  // merge-time content seal is checked whenever present (the main
  // partition is immutable, so it holds even after a crash).
  ++ctx.report->structures_checked;
  bool dict_ok = values_ok && blob_ok;
  if (dict_ok && col.dict_seal != 0 &&
      col.dict_seal != storage::ComputeMainDictSeal(region, col)) {
    AddFinding(ctx, "dictionary", FindingSeverity::kTable,
               where + ": dictionary content seal mismatch");
    dict_ok = false;
  }
  const uint64_t dict_size = col.dict_values.size;
  if (dict_ok && dict_size > 0) {
    const auto* values = reinterpret_cast<const uint64_t*>(
        ContentOf(region, col.dict_values, 8));
    const uint8_t* blob = ContentOf(region, col.dict_blob, 1);
    const uint64_t blob_size = col.dict_blob.size;
    if (values == nullptr) {
      dict_ok = false;
    } else if (type == DataType::kString) {
      std::string_view prev;
      for (uint64_t id = 0; id < dict_size && dict_ok; ++id) {
        std::string_view text;
        if (blob == nullptr ||
            !ReadBlobString(blob, blob_size, values[id], &text)) {
          AddFinding(ctx, "dictionary", FindingSeverity::kTable,
                     where + ": dictionary entry " + std::to_string(id) +
                         " points outside the string blob");
          dict_ok = false;
        } else if (id > 0 && prev >= text) {
          AddFinding(ctx, "dictionary", FindingSeverity::kTable,
                     where + ": dictionary not strictly sorted at id " +
                         std::to_string(id));
          dict_ok = false;
        } else {
          prev = text;
        }
      }
    } else {
      for (uint64_t id = 1; id < dict_size; ++id) {
        if (storage::CompareNumericEncoded(type, values[id - 1],
                                           values[id]) >= 0) {
          AddFinding(ctx, "dictionary", FindingSeverity::kTable,
                     where + ": dictionary not strictly sorted at id " +
                         std::to_string(id));
          dict_ok = false;
          break;
        }
      }
    }
  }

  // Attribute vector: enough packed words, every id within the
  // dictionary. Merge-time seal checked whenever present.
  ++ctx.report->structures_checked;
  bool attr_ok = words_ok;
  if (attr_ok && col.attr_seal != 0 &&
      col.attr_seal != storage::ComputeMainAttrSeal(region, col)) {
    AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
               where + ": attribute content seal mismatch");
    attr_ok = false;
  }
  if (attr_ok && rows > 0) {
    const uint64_t bits = col.bits;
    if (bits < 1 || bits > 32) {
      AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
                 where + ": packed width " + std::to_string(bits) +
                     " out of range");
    } else if (col.attr_words.size <
               bitpack::WordsFor(rows, static_cast<uint8_t>(bits))) {
      AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
                 where + ": attribute vector too short for " +
                     std::to_string(rows) + " rows");
    } else {
      const auto* words = reinterpret_cast<const uint64_t*>(
          ContentOf(region, col.attr_words, 8));
      if (words != nullptr) {
        for (uint64_t r = 0; r < rows; ++r) {
          const uint64_t id =
              bitpack::Get(words, r, static_cast<uint8_t>(bits));
          if (id >= dict_size) {
            AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
                       where + ": row " + std::to_string(r) +
                           " references value id " + std::to_string(id) +
                           " outside the dictionary (size " +
                           std::to_string(dict_size) + ")");
            break;
          }
        }
      }
    }
  }

  // Group-key CSR: |dict|+1 monotone offsets mapping every row exactly
  // once. Part of the index↔table cross-check.
  if (col.gk_offsets.size != 0) {
    ++ctx.report->structures_checked;
    bool gk_ok = true;
    if (col.gk_seal != 0 &&
        col.gk_seal != storage::ComputeMainGkSeal(region, col)) {
      AddFinding(ctx, "index", FindingSeverity::kTable,
                 where + ": group-key content seal mismatch");
      gk_ok = false;
    }
    const auto* offsets = reinterpret_cast<const uint64_t*>(
        ContentOf(region, col.gk_offsets, 8));
    if (gk_ok && (offsets == nullptr ||
                  col.gk_offsets.size != dict_size + 1)) {
      AddFinding(ctx, "index", FindingSeverity::kTable,
                 where + ": group-key offsets have " +
                     std::to_string(col.gk_offsets.size) +
                     " entries, expected " + std::to_string(dict_size + 1));
      gk_ok = false;
    }
    if (gk_ok) {
      for (uint64_t v = 1; v <= dict_size; ++v) {
        if (offsets[v] < offsets[v - 1]) {
          AddFinding(ctx, "index", FindingSeverity::kTable,
                     where + ": group-key offsets not monotone at id " +
                         std::to_string(v));
          gk_ok = false;
          break;
        }
      }
    }
    if (gk_ok &&
        (offsets[0] != 0 || offsets[dict_size] != col.gk_positions.size ||
         col.gk_positions.size != rows)) {
      AddFinding(ctx, "index", FindingSeverity::kTable,
                 where + ": group-key does not cover the main partition (" +
                     std::to_string(col.gk_positions.size) +
                     " positions for " + std::to_string(rows) + " rows)");
      gk_ok = false;
    }
    if (gk_ok) {
      const auto* positions = reinterpret_cast<const uint64_t*>(
          ContentOf(region, col.gk_positions, 8));
      for (uint64_t i = 0; positions != nullptr && i < rows; ++i) {
        if (positions[i] >= rows) {
          AddFinding(ctx, "index", FindingSeverity::kTable,
                     where + ": group-key position " + std::to_string(i) +
                         " references row " + std::to_string(positions[i]) +
                         " beyond the main partition");
          break;
        }
      }
    }
  }
}

void VerifyDeltaColumn(Ctx& ctx, const PDeltaColumnMeta& col,
                       DataType type, const PTableGroup& group,
                       uint64_t column) {
  const auto& region = *ctx.region;
  const std::string where = "delta column " + std::to_string(column);
  const bool values_ok =
      CheckDesc(ctx, col.dict_values, 8, where + " dict values");
  const bool blob_ok =
      CheckDesc(ctx, col.dict_blob, 1, where + " dict blob");
  const bool attr_desc_ok = CheckDesc(ctx, col.attr, 4, where + " attr");

  // Dictionary: unsorted but duplicate-free; strings inside the blob.
  ++ctx.report->structures_checked;
  bool dict_ok = values_ok && blob_ok;
  if (dict_ok && ctx.sealed && col.dict_seal != 0 &&
      col.dict_seal != storage::ComputeDeltaDictSeal(region, col)) {
    AddFinding(ctx, "dictionary", FindingSeverity::kTable,
               where + ": dictionary content seal mismatch");
    dict_ok = false;
  }
  const uint64_t dict_size = col.dict_values.size;
  if (dict_ok && dict_size > 0) {
    const auto* values = reinterpret_cast<const uint64_t*>(
        ContentOf(region, col.dict_values, 8));
    const uint8_t* blob = ContentOf(region, col.dict_blob, 1);
    if (values != nullptr) {
      if (type == DataType::kString) {
        std::set<std::string_view> seen;
        for (uint64_t id = 0; id < dict_size; ++id) {
          std::string_view text;
          if (blob == nullptr ||
              !ReadBlobString(blob, col.dict_blob.size, values[id],
                              &text)) {
            AddFinding(ctx, "dictionary", FindingSeverity::kTable,
                       where + ": dictionary entry " + std::to_string(id) +
                           " points outside the string blob");
            break;
          }
          if (!seen.insert(text).second) {
            AddFinding(ctx, "dictionary", FindingSeverity::kTable,
                       where + ": duplicate dictionary value at id " +
                           std::to_string(id));
            break;
          }
        }
      } else {
        std::unordered_set<uint64_t> seen;
        for (uint64_t id = 0; id < dict_size; ++id) {
          if (!seen.insert(values[id]).second) {
            AddFinding(ctx, "dictionary", FindingSeverity::kTable,
                       where + ": duplicate dictionary value at id " +
                           std::to_string(id));
            break;
          }
        }
      }
    }
  }

  // Attribute vector: one id per committed delta row, each id within the
  // dictionary. Uncommitted trailing rows may be torn (they are truncated
  // by crash repair), so only rows covered by committed MVCC entries are
  // checked.
  ++ctx.report->structures_checked;
  bool attr_ok = attr_desc_ok;
  if (attr_ok && ctx.sealed && col.attr_seal != 0 &&
      col.attr_seal != storage::ComputeDeltaAttrSeal(region, col)) {
    AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
               where + ": attribute content seal mismatch");
    attr_ok = false;
  }
  if (attr_ok) {
    const uint64_t committed_rows = group.delta_mvcc.size;
    if (col.attr.size < committed_rows) {
      AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
                 where + ": attribute vector has " +
                     std::to_string(col.attr.size) + " entries for " +
                     std::to_string(committed_rows) + " delta rows");
    } else {
      const auto* ids = reinterpret_cast<const uint32_t*>(
          ContentOf(region, col.attr, 4));
      const auto* mvcc = reinterpret_cast<const MvccEntry*>(
          ContentOf(region, group.delta_mvcc, sizeof(MvccEntry)));
      if (ids != nullptr && mvcc != nullptr) {
        for (uint64_t r = 0; r < committed_rows; ++r) {
          if (mvcc[r].begin == storage::kCidInfinity) continue;
          if (ids[r] >= dict_size) {
            AddFinding(ctx, "attribute_vector", FindingSeverity::kTable,
                       where + ": committed row " + std::to_string(r) +
                           " references value id " +
                           std::to_string(ids[r]) +
                           " outside the dictionary (size " +
                           std::to_string(dict_size) + ")");
            break;
          }
        }
      }
    }
  }
}

/// Content seal of a hash index: identity fields plus bucket heads and
/// entry chains. Skip-list indexes get structural checks only (their
/// entries vector doubles as a variable-width key blob).
uint64_t HashIndexSeal(const nvm::PmemRegion& region,
                       const PIndexMeta& idx) {
  uint32_t crc = Crc32c(&idx.kind, sizeof(idx.kind));
  crc = Crc32c(&idx.column, sizeof(idx.column), crc);
  crc = Crc32c(&idx.bucket_count, sizeof(idx.bucket_count), crc);
  crc = storage::CrcOfVectorContent(region, idx.buckets, 8, crc);
  crc = storage::CrcOfVectorContent(
      region, idx.entries, sizeof(index::DeltaIndexEntry), crc);
  return SealTag(crc);
}

void VerifyIndex(Ctx& ctx, const PIndexMeta& idx, const PTableGroup& group,
                 uint64_t num_columns) {
  const auto& region = *ctx.region;
  ++ctx.report->structures_checked;
  const std::string where = "index on column " + std::to_string(idx.column);
  if (idx.column >= num_columns) {
    AddFinding(ctx, "index", FindingSeverity::kTable,
               where + ": column out of range");
    return;
  }
  if (idx.kind == storage::kIndexSkipList) {
    const auto* head = At<storage::PSkipNode>(region, idx.head_off, 1);
    if (head == nullptr || idx.head_off < alloc::PAllocator::HeapBegin()) {
      AddFinding(ctx, "index", FindingSeverity::kTable,
                 where + ": skip-list head outside the heap");
      return;
    }
    uint64_t off = idx.head_off;
    uint64_t steps = 0;
    const uint64_t max_steps =
        region.size() / sizeof(storage::PSkipNode) + 1;
    while (off != 0) {
      const auto* node = At<storage::PSkipNode>(region, off, 1);
      if (node == nullptr || off < alloc::PAllocator::HeapBegin()) {
        AddFinding(ctx, "index", FindingSeverity::kTable,
                   where + ": skip-list node outside the heap at offset " +
                       std::to_string(off));
        return;
      }
      if (node->height < 1 || node->height > storage::kSkipListMaxHeight) {
        AddFinding(ctx, "index", FindingSeverity::kTable,
                   where + ": skip-list node with impossible height " +
                       std::to_string(node->height));
        return;
      }
      if (++steps > max_steps) {
        AddFinding(ctx, "index", FindingSeverity::kTable,
                   where + ": skip-list level 0 contains a cycle");
        return;
      }
      off = node->next[0];
    }
    return;
  }
  if (idx.kind != storage::kIndexHash) {
    AddFinding(ctx, "index", FindingSeverity::kTable,
               where + ": unknown index kind " + std::to_string(idx.kind));
    return;
  }
  bool healthy =
      CheckDesc(ctx, idx.buckets, 8, where + " buckets") &&
      CheckDesc(ctx, idx.entries, sizeof(index::DeltaIndexEntry),
                where + " entries");
  if (healthy && ctx.sealed && idx.content_seal != 0 &&
      idx.content_seal != HashIndexSeal(region, idx)) {
    AddFinding(ctx, "index", FindingSeverity::kTable,
               where + ": index content seal mismatch");
    healthy = false;
  }
  if (!healthy) return;
  if (idx.bucket_count == 0 ||
      (idx.bucket_count & (idx.bucket_count - 1)) != 0 ||
      idx.buckets.size != idx.bucket_count) {
    AddFinding(ctx, "index", FindingSeverity::kTable,
               where + ": bucket table malformed (bucket_count " +
                   std::to_string(idx.bucket_count) + ", buckets " +
                   std::to_string(idx.buckets.size) + ")");
    return;
  }
  const auto* heads = reinterpret_cast<const uint64_t*>(
      ContentOf(region, idx.buckets, 8));
  const auto* entries = reinterpret_cast<const index::DeltaIndexEntry*>(
      ContentOf(region, idx.entries, sizeof(index::DeltaIndexEntry)));
  const uint64_t entry_count = idx.entries.size;
  if (heads == nullptr || (entry_count > 0 && entries == nullptr)) return;
  // Cross-check: every chained entry references an existing delta row of
  // the indexed column.
  const uint64_t physical_rows =
      const_cast<PTableGroup&>(group)
          .delta_col(idx.column, num_columns)
          ->attr.size;
  for (uint64_t b = 0; b < idx.bucket_count; ++b) {
    uint64_t pos = heads[b];  // 1-based
    uint64_t steps = 0;
    while (pos != 0) {
      if (pos > entry_count) {
        AddFinding(ctx, "index", FindingSeverity::kTable,
                   where + ": bucket " + std::to_string(b) +
                       " chain references entry " + std::to_string(pos) +
                       " beyond the entry vector (" +
                       std::to_string(entry_count) + ")");
        return;
      }
      if (++steps > entry_count) {
        AddFinding(ctx, "index", FindingSeverity::kTable,
                   where + ": bucket " + std::to_string(b) +
                       " chain contains a cycle");
        return;
      }
      const index::DeltaIndexEntry& entry = entries[pos - 1];
      if (entry.row >= physical_rows) {
        AddFinding(ctx, "index", FindingSeverity::kTable,
                   where + ": entry " + std::to_string(pos) +
                       " references delta row " + std::to_string(entry.row) +
                       " beyond the partition (" +
                       std::to_string(physical_rows) + " rows)");
        return;
      }
      pos = entry.next;
    }
  }
}

void VerifyTable(Ctx& ctx, uint64_t meta_off) {
  const auto& region = *ctx.region;
  ctx.table_off = meta_off;
  ctx.table_name = "table@" + std::to_string(meta_off);
  ++ctx.report->tables_checked;
  ++ctx.report->structures_checked;

  const auto* meta = At<PTableMeta>(region, meta_off, 1);
  if (meta == nullptr || meta_off < alloc::PAllocator::HeapBegin()) {
    AddFinding(ctx, "table_meta", FindingSeverity::kTable,
               "table metadata outside the heap");
    return;
  }
  if (std::memchr(meta->name, '\0', PTableMeta::kMaxNameLen) == nullptr) {
    AddFinding(ctx, "table_meta", FindingSeverity::kTable,
               "table name is not NUL-terminated");
    return;
  }
  if (meta->name[0] != '\0') ctx.table_name = meta->name;

  // Schema: must deserialize and agree with the recorded column count.
  ++ctx.report->structures_checked;
  const uint8_t* schema_bytes =
      At<uint8_t>(region, meta->schema_off, meta->schema_len);
  if (schema_bytes == nullptr || meta->schema_len == 0) {
    AddFinding(ctx, "schema", FindingSeverity::kTable,
               "schema blob outside the heap");
    return;
  }
  auto schema_result =
      storage::Schema::Deserialize(schema_bytes, meta->schema_len);
  if (!schema_result.ok()) {
    AddFinding(ctx, "schema", FindingSeverity::kTable,
               "schema blob does not deserialize: " +
                   schema_result.status().ToString());
    return;
  }
  const storage::Schema& schema = *schema_result;
  if (schema.num_columns() != meta->num_columns ||
      meta->num_columns == 0) {
    AddFinding(ctx, "schema", FindingSeverity::kTable,
               "schema has " + std::to_string(schema.num_columns()) +
                   " columns, table records " +
                   std::to_string(meta->num_columns));
    return;
  }

  const uint64_t ncols = meta->num_columns;
  const auto* group_bytes =
      At<uint8_t>(region, meta->group_off, PTableGroup::ByteSize(ncols));
  if (group_bytes == nullptr ||
      meta->group_off < alloc::PAllocator::HeapBegin()) {
    AddFinding(ctx, "table_meta", FindingSeverity::kTable,
               "table group outside the heap");
    return;
  }
  const auto& group = *reinterpret_cast<const PTableGroup*>(group_bytes);
  auto& mutable_group = const_cast<PTableGroup&>(group);

  VerifyMvcc(ctx, group);
  for (uint64_t c = 0; c < ncols; ++c) {
    const DataType type = schema.column(c).type;
    VerifyMainColumn(ctx, *mutable_group.main_col(c), type,
                     group.main_row_count, c);
    VerifyDeltaColumn(ctx, *mutable_group.delta_col(c, ncols), type, group,
                      c);
  }
  for (const auto& idx : group.indexes) {
    if (idx.state == 0) continue;
    if (idx.state != 1) {
      AddFinding(ctx, "index", FindingSeverity::kTable,
                 "index slot in impossible state " +
                     std::to_string(idx.state));
      continue;
    }
    VerifyIndex(ctx, idx, group, ncols);
  }
}

void VerifyCatalogAndTables(Ctx& ctx) {
  const auto& region = *ctx.region;
  ++ctx.report->structures_checked;
  auto root_result = alloc::GetRoot(region, storage::kCatalogRootName);
  if (!root_result.ok()) {
    AddFinding(ctx, "catalog", FindingSeverity::kFatal,
               "catalog root missing: " + root_result.status().ToString());
    return;
  }
  const auto* meta = At<storage::PCatalogMeta>(region, *root_result, 1);
  if (meta == nullptr) {
    AddFinding(ctx, "catalog", FindingSeverity::kFatal,
               "catalog metadata outside region");
    return;
  }
  if (meta->next_table_id == 0) {
    AddFinding(ctx, "catalog", FindingSeverity::kFatal,
               "catalog table-id counter is zero");
    return;
  }
  if (!CheckDesc(ctx, meta->table_meta_offsets, 8, "catalog table list")) {
    // Upgrade: a broken catalog spine takes the whole image down.
    ctx.report->findings.back().severity = FindingSeverity::kFatal;
    ctx.report->findings.back().structure = "catalog";
    return;
  }
  const auto* offsets = reinterpret_cast<const uint64_t*>(
      ContentOf(region, meta->table_meta_offsets, 8));
  for (uint64_t i = 0; offsets != nullptr &&
                       i < meta->table_meta_offsets.size;
       ++i) {
    VerifyTable(ctx, offsets[i]);
    ctx.table_name.clear();
    ctx.table_off = 0;
  }
}

void VerifyBlackbox(Ctx& ctx) {
  const auto& region = *ctx.region;
  const auto geom = obs::BlackboxGeometryFor(region.size());
  if (!geom.enabled()) return;
  ++ctx.report->structures_checked;
  Status status =
      obs::ValidateBlackboxHeader(region.base(), region.size());
  if (!status.ok()) {
    // Diagnostics only: the next attach quarantines (reformats) it, and
    // per-slot CRCs still let dbinspect decode surviving events.
    AddFinding(ctx, "flight_recorder", FindingSeverity::kAdvisory,
               status.message());
  }
}

}  // namespace

bool VerifyReport::has_fatal() const {
  for (const auto& f : findings) {
    if (f.severity == FindingSeverity::kFatal) return true;
  }
  return false;
}

bool VerifyReport::blocking() const {
  for (const auto& f : findings) {
    if (f.severity != FindingSeverity::kAdvisory) return true;
  }
  return false;
}

bool VerifyReport::HasStructure(const std::string& structure) const {
  for (const auto& f : findings) {
    if (f.structure == structure) return true;
  }
  return false;
}

std::string VerifyReport::Summary() const {
  if (findings.empty()) return "no findings";
  std::string out = std::to_string(findings.size()) + " finding(s): ";
  const size_t shown = findings.size() < 6 ? findings.size() : 6;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out += ", ";
    out += findings[i].structure;
    if (!findings[i].table.empty()) out += "(" + findings[i].table + ")";
  }
  if (shown < findings.size()) out += ", ...";
  return out;
}

VerifyReport DeepVerify(const nvm::PmemRegion& region) {
  VerifyReport report;
  report.deep = true;
  Ctx ctx;
  ctx.region = &region;
  ctx.report = &report;

  ++report.structures_checked;
  Status header_status = alloc::ValidateRegionHeader(region);
  if (!header_status.ok()) {
    AddFinding(ctx, "region_header", FindingSeverity::kFatal,
               header_status.ToString());
    return report;
  }
  ctx.sealed = alloc::WasCleanShutdown(region);
  report.sealed_image = ctx.sealed;

  VerifyAllocator(ctx);
  VerifyCommitTable(ctx);
  VerifyCatalogAndTables(ctx);
  VerifyBlackbox(ctx);
  return report;
}

void SealForCleanShutdown(alloc::PHeap& heap) {
  auto& region = heap.region();

  auto* alloc_meta = reinterpret_cast<alloc::AllocMeta*>(
      region.base() + alloc::PAllocator::MetaOffset());
  alloc_meta->meta_crc = AllocMetaSeal(*alloc_meta);
  region.Persist(&alloc_meta->meta_crc, sizeof(alloc_meta->meta_crc));

  auto SealDesc = [&region](PVectorDesc* desc) {
    desc->seal = storage::ComputePVectorDescSeal(*desc);
    region.Persist(&desc->seal, sizeof(desc->seal));
  };

  auto txn_root = heap.GetRoot(txn::kTxnStateRootName);
  if (txn_root.ok()) {
    auto* block = heap.Resolve<txn::PTxnStateBlock>(*txn_root);
    block->block_crc = TxnBlockSeal(*block);
    region.Persist(&block->block_crc, sizeof(block->block_crc));
  }

  auto catalog_root = heap.GetRoot(storage::kCatalogRootName);
  if (!catalog_root.ok()) return;
  auto* catalog = heap.Resolve<storage::PCatalogMeta>(*catalog_root);
  SealDesc(&catalog->table_meta_offsets);
  const auto* offsets = reinterpret_cast<const uint64_t*>(
      ContentOf(region, catalog->table_meta_offsets, 8));
  if (offsets == nullptr && catalog->table_meta_offsets.size > 0) return;

  for (uint64_t i = 0; i < catalog->table_meta_offsets.size; ++i) {
    const auto* meta = At<PTableMeta>(region, offsets[i], 1);
    if (meta == nullptr || meta->num_columns == 0) continue;
    const uint64_t ncols = meta->num_columns;
    if (At<uint8_t>(region, meta->group_off,
                    PTableGroup::ByteSize(ncols)) == nullptr) {
      continue;
    }
    auto* group = heap.Resolve<PTableGroup>(meta->group_off);
    SealDesc(&group->main_mvcc);
    SealDesc(&group->delta_mvcc);
    group->mvcc_seal = storage::ComputeGroupMvccSeal(region, *group);
    region.Persist(&group->mvcc_seal, sizeof(group->mvcc_seal));
    for (uint64_t c = 0; c < ncols; ++c) {
      PMainColumnMeta* col = group->main_col(c);
      SealDesc(&col->dict_values);
      SealDesc(&col->dict_blob);
      SealDesc(&col->attr_words);
      SealDesc(&col->gk_offsets);
      SealDesc(&col->gk_positions);
      storage::SealMainColumn(region, col);
      storage::SealMainGroupKey(region, col);
      PDeltaColumnMeta* dcol = group->delta_col(c, ncols);
      SealDesc(&dcol->dict_values);
      SealDesc(&dcol->dict_blob);
      SealDesc(&dcol->attr);
      dcol->dict_seal = storage::ComputeDeltaDictSeal(region, *dcol);
      dcol->attr_seal = storage::ComputeDeltaAttrSeal(region, *dcol);
      region.Persist(&dcol->dict_seal, sizeof(uint64_t) * 2);
    }
    for (auto& idx : group->indexes) {
      if (idx.state != 1) continue;
      if (idx.kind == storage::kIndexHash) {
        idx.content_seal = HashIndexSeal(region, idx);
        region.Persist(&idx.content_seal, sizeof(idx.content_seal));
      }
    }
  }
}

}  // namespace hyrise_nv::recovery
