#ifndef HYRISE_NV_RECOVERY_RECOVERY_DRIVER_H_
#define HYRISE_NV_RECOVERY_RECOVERY_DRIVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alloc/pheap.h"
#include "recovery/log_index.h"

namespace hyrise_nv::recovery {

struct RecoveryDriverOptions {
  /// Rows restored per write_mutex hold by the background drain. Smaller
  /// chunks bound writer stalls; larger chunks drain faster.
  uint64_t drain_chunk_rows = 4096;
  /// Optional pause between drain chunks (0 = drain flat out). Tests use
  /// this to hold the degraded window open deterministically.
  uint64_t drain_pause_us = 0;
};

/// Live restoration progress, safe to read from any thread.
struct RecoveryProgress {
  uint64_t total_rows = 0;
  uint64_t restored_rows = 0;
  /// True once the drain finished and the engine flipped to fully
  /// recovered (deferred indexes built). Default-true so a progress value
  /// from a non-degraded database reads as "done".
  bool drained = true;
  double percent() const {
    if (total_rows == 0) return 100.0;
    return 100.0 * static_cast<double>(restored_rows) /
           static_cast<double>(total_rows);
  }
};

/// Drives serve-during-recovery (MM-DIRECT shape): owns the LogIndex
/// staged by AnalyzeLog, restores pending rows on demand when degraded
/// reads touch them, and runs a background drain thread that restores
/// the remainder, builds the deferred indexes (via the finalize
/// callback), and flips the engine to fully recovered.
///
/// Concurrency model: all restoration happens under the owning table's
/// write_mutex — the same lock Database::Insert holds — so a pending row
/// is restored exactly once no matter how many readers race for it
/// (per-key single-flight by mutual exclusion; losers observe the
/// restored flag and return immediately). Readers that skipped the mutex
/// take the all-restored fast path, whose acquire load pairs with the
/// release increment published after the last value write. The ready
/// flip is a release store after finalize, so post-flip readers see the
/// built indexes without further synchronisation.
///
/// Restores are never re-logged: the WAL already holds these records, so
/// a crash during degraded serving simply re-runs analysis on the next
/// open — the drain restart is idempotent by construction.
class RecoveryDriver {
 public:
  RecoveryDriver(alloc::PHeap& heap, LogIndex index,
                 RecoveryDriverOptions options);
  ~RecoveryDriver();

  RecoveryDriver(const RecoveryDriver&) = delete;
  RecoveryDriver& operator=(const RecoveryDriver&) = delete;

  /// Starts the background drain. `finalize` runs on the drain thread
  /// after the last row is restored and before the ready flip (the
  /// Database uses it to build deferred indexes).
  void StartDrain(std::function<Status()> finalize);

  /// Stops the drain thread without completing it (Close / destruction).
  /// Safe to call repeatedly; a stopped drain leaves the engine degraded.
  void StopDrain();

  bool serving_degraded() const {
    return !ready_.load(std::memory_order_acquire);
  }

  RecoveryProgress progress() const;

  /// Restores every pending row whose `column` value equals `value`
  /// (per-key index hit) or the whole table when `column` has no key
  /// map. No-op once the table is fully restored.
  Status PrepareScanEqual(storage::Table* table, size_t column,
                          const storage::Value& value);

  /// Range analogue of PrepareScanEqual: restores pending rows whose key
  /// lies in [lo, hi].
  Status PrepareScanRange(storage::Table* table, size_t column,
                          const storage::Value& lo,
                          const storage::Value& hi);

  /// Restores every pending row of `table` (non-key-column scans,
  /// tests).
  Status RestoreTable(storage::Table* table);

 private:
  struct TableState {
    TablePending pending;
    std::unique_ptr<std::atomic<uint8_t>[]> restored;
    std::atomic<uint64_t> restored_count{0};
  };

  TableState* Find(storage::Table* table);
  Status RestoreRowLocked(TableState& state, uint32_t ordinal,
                          bool on_demand);
  Status RestoreAllRowsLocked(TableState& state, bool on_demand);
  void DrainLoop();
  void PublishProgressGauge();

  alloc::PHeap* heap_;
  RecoveryDriverOptions options_;
  std::vector<std::unique_ptr<TableState>> states_;
  std::unordered_map<storage::Table*, TableState*> by_table_;
  uint64_t total_rows_ = 0;
  std::atomic<uint64_t> restored_rows_{0};
  std::atomic<uint64_t> drain_restored_rows_{0};
  std::atomic<bool> ready_{false};
  std::atomic<bool> stop_{false};
  std::function<Status()> finalize_;
  std::thread drain_thread_;
};

}  // namespace hyrise_nv::recovery

#endif  // HYRISE_NV_RECOVERY_RECOVERY_DRIVER_H_
