#include "recovery/log_recovery.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "index/index_set.h"
#include "nvm/nvm_env.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "storage/merge.h"
#include "wal/log_reader.h"

namespace hyrise_nv::recovery {

namespace {

using storage::Cid;
using storage::Tid;

}  // namespace

void NoteCheckpointFallback(alloc::PHeap& heap) {
  if (obs::BlackboxWriter* bb = heap.blackbox()) {
    bb->Record(obs::BlackboxEventType::kCheckpointFallback, 1);
  }
  obs::MetricsRegistry::Instance()
      .GetCounter("recovery.checkpoint_fallback.count")
      .Inc();
}

Result<LogRecoveryReport> RecoverFromLog(
    alloc::PHeap& heap, storage::Catalog& catalog,
    txn::TxnManager& txn_manager, const wal::LogManagerOptions& options) {
  LogRecoveryReport report;
  obs::SpanTracer tracer("log_recovery");

  // Phase 1: checkpoint load.
  tracer.Begin("checkpoint_load");
  uint64_t replay_offset = 0;
  std::vector<wal::CheckpointInfo::IndexedColumn> indexed_columns;
  {
    auto info_result =
        wal::LoadCheckpoint(options.checkpoint_path, options.device, heap,
                            catalog, txn_manager.commit_table());
    if (info_result.ok()) {
      replay_offset = info_result->log_offset;
      report.checkpoint_bytes = info_result->bytes;
      indexed_columns = info_result->indexed_columns;
    } else if (info_result.status().IsCorruption() &&
               catalog.num_tables() == 0) {
      // A corrupt checkpoint is recoverable as long as the log still
      // holds the full history: replay from offset 0 into the untouched
      // (freshly formatted) heap. If the catalog already has state, the
      // log alone cannot reproduce it — propagate the error instead.
      HYRISE_NV_LOG(kWarn)
          << "checkpoint is corrupt ("
          << info_result.status().ToString()
          << "); falling back to full log replay from offset 0";
      report.checkpoint_fallback = true;
      NoteCheckpointFallback(heap);
    } else if (!info_result.status().IsNotFound()) {
      return info_result.status();
    }
  }
  report.checkpoint_load_seconds = tracer.End();

  // Phase 2: two-pass log replay.
  tracer.Begin("replay");
  if (nvm::FileExists(options.log_path)) {
    auto device_result =
        wal::BlockDevice::Open(options.log_path, options.device);
    if (!device_result.ok()) return device_result.status();
    wal::BlockDevice& device = **device_result;
    report.log_bytes_scanned =
        device.size() > replay_offset ? device.size() - replay_offset : 0;

    // Pass one: committed tid -> cid, plus prepared-but-undecided tids
    // (a kPrepare with no later kCommit/kAbort for the same tid = the
    // transaction is in-doubt and awaits the coordinator's decision).
    std::unordered_map<Tid, Cid> committed;
    std::unordered_map<Tid, uint64_t> prepared;  // tid -> gtid, undecided
    Cid max_cid = 0;
    Tid max_tid = 0;
    {
      tracer.Begin("scan_commits");
      wal::LogReader reader(&device);
      auto scan = reader.ForEach(
          replay_offset, [&](const wal::LogRecord& record) -> Status {
            max_tid = std::max(max_tid, record.tid);
            if (record.type == wal::RecordType::kCommit) {
              committed.emplace(record.tid, record.cid);
              prepared.erase(record.tid);
              max_cid = std::max(max_cid, record.cid);
            } else if (record.type == wal::RecordType::kAbort) {
              prepared.erase(record.tid);
            } else if (record.type == wal::RecordType::kPrepare) {
              prepared.emplace(record.tid, record.gtid);
            }
            return Status::OK();
          });
      if (!scan.ok()) return scan.status();
      tracer.End();
    }

    // Pass two: apply. All inserts are re-applied so that logged row
    // positions stay valid; only committed ones are stamped visible.
    tracer.Begin("apply");
    auto& region = heap.region();
    // Write sets of in-doubt transactions, rebuilt in log order so a
    // later decide-commit stamps exactly what the prepare covered.
    std::unordered_map<Tid, std::vector<LogRecoveryReport::InDoubtWrite>>
        in_doubt_writes;
    wal::LogReader reader(&device);
    auto apply = [&](const wal::LogRecord& record) -> Status {
      switch (record.type) {
        case wal::RecordType::kInsert: {
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          auto loc = (*table)->AppendRow(record.values, record.tid);
          if (!loc.ok()) return loc.status();
          auto it = committed.find(record.tid);
          if (it != committed.end()) {
            auto* entry = (*table)->mvcc(*loc);
            entry->begin = it->second;
            entry->tid = storage::kTidNone;
            region.Persist(entry, sizeof(*entry));
          } else if (prepared.count(record.tid) > 0) {
            // In-doubt insert: stays begin = ∞ (invisible) with the tid
            // claim AppendRow already stamped; remember it for adoption.
            in_doubt_writes[record.tid].push_back(
                {record.table_id, *loc, false});
          }
          break;
        }
        case wal::RecordType::kInsertEncoded: {
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          auto loc = (*table)->AppendEncodedRow(record.value_ids,
                                                record.tid);
          if (!loc.ok()) return loc.status();
          auto it = committed.find(record.tid);
          if (it != committed.end()) {
            auto* entry = (*table)->mvcc(*loc);
            entry->begin = it->second;
            entry->tid = storage::kTidNone;
            region.Persist(entry, sizeof(*entry));
          } else if (prepared.count(record.tid) > 0) {
            in_doubt_writes[record.tid].push_back(
                {record.table_id, *loc, false});
          }
          break;
        }
        case wal::RecordType::kDictAdd: {
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          if (record.column >= (*table)->schema().num_columns()) {
            return Status::Corruption("dict-add column out of range");
          }
          auto id = (*table)
                        ->delta()
                        .column(record.column)
                        .dictionary()
                        .GetOrInsert(record.dict_value);
          if (!id.ok()) return id.status();
          break;
        }
        case wal::RecordType::kDelete: {
          auto it = committed.find(record.tid);
          const bool is_in_doubt =
              it == committed.end() && prepared.count(record.tid) > 0;
          if (it == committed.end() && !is_in_doubt) {
            break;  // uncommitted delete: no-op
          }
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          const uint64_t rows = record.loc.in_main
                                    ? (*table)->main_row_count()
                                    : (*table)->delta_row_count();
          if (record.loc.row >= rows) {
            return Status::Corruption("logged delete references bad row");
          }
          auto* entry = (*table)->mvcc(record.loc);
          if (is_in_doubt) {
            // In-doubt delete: re-claim the row (keeps it visible but
            // locked against other writers) until the decision lands.
            entry->tid = record.tid;
            region.Persist(entry, sizeof(*entry));
            in_doubt_writes[record.tid].push_back(
                {record.table_id, record.loc, true});
            break;
          }
          entry->end = it->second;
          entry->tid = storage::kTidNone;
          region.Persist(entry, sizeof(*entry));
          break;
        }
        case wal::RecordType::kCreateTable: {
          auto schema_result = storage::Schema::Deserialize(
              record.schema_blob.data(), record.schema_blob.size());
          if (!schema_result.ok()) return schema_result.status();
          HYRISE_NV_RETURN_NOT_OK(
              catalog
                  .RestoreTable(record.table_name, *schema_result,
                                record.table_id)
                  .status());
          break;
        }
        case wal::RecordType::kCreateIndex: {
          auto table = catalog.GetTableById(record.table_id);
          if (!table.ok()) return table.status();
          indexed_columns.push_back(
              {(*table)->name(), record.column, record.index_kind});
          break;
        }
        case wal::RecordType::kCommit:
        case wal::RecordType::kAbort:
        case wal::RecordType::kPrepare:
          break;
      }
      ++report.replayed_records;
      return Status::OK();
    };
    auto scan = reader.ForEach(replay_offset, apply);
    if (!scan.ok()) return scan.status();

    report.committed_txns = committed.size();
    for (const auto& [tid, gtid] : prepared) {
      LogRecoveryReport::InDoubtTxn txn;
      txn.tid = tid;
      txn.gtid = gtid;
      auto writes_it = in_doubt_writes.find(tid);
      if (writes_it != in_doubt_writes.end()) {
        txn.writes = std::move(writes_it->second);
      }
      report.in_doubt.push_back(std::move(txn));
    }

    // Advance transaction state beyond anything the log used.
    auto* block = txn_manager.commit_table().block();
    if (max_cid >= block->commit_watermark) {
      region.AtomicPersist64(&block->commit_watermark, max_cid);
    }
    if (max_cid + 1 > block->cid_block) {
      region.AtomicPersist64(&block->cid_block, max_cid + 1);
    }
    if (max_tid + 1 > block->tid_block) {
      region.AtomicPersist64(&block->tid_block, max_tid + 1);
    }
    tracer.End();
  }
  report.replay_seconds = tracer.End();

  // Phase 3: rebuild all indexes. This is the cost block that dominates
  // log recovery for large datasets (and that instant restart skips).
  tracer.Begin("index_rebuild");
  for (const auto& indexed : indexed_columns) {
    auto table_result = catalog.GetTable(indexed.table);
    if (!table_result.ok()) return table_result.status();
    storage::Table* table = *table_result;
    HYRISE_NV_RETURN_NOT_OK(
        storage::BuildMainGroupKey(*table, indexed.column));
    index::IndexSet indexes(table);
    HYRISE_NV_RETURN_NOT_OK(indexes.Attach());
    HYRISE_NV_RETURN_NOT_OK(indexes.CreateIndexOfKind(
        indexed.column, static_cast<storage::PIndexKind>(indexed.kind)));
  }
  report.index_rebuild_seconds = tracer.End();
  report.trace = tracer.Finish();
  report.total_seconds = report.trace.seconds;
  return report;
}

Result<bool> LogHasInDoubt(const wal::LogManagerOptions& options) {
  if (!nvm::FileExists(options.log_path)) return false;
  auto device_result =
      wal::BlockDevice::Open(options.log_path, options.device);
  if (!device_result.ok()) return device_result.status();
  // Scan from offset 0 regardless of any checkpoint: checkpoints are
  // refused while prepared transactions exist, so every undecided
  // kPrepare is at or past the checkpoint offset anyway — scanning the
  // whole log just keeps this helper independent of checkpoint parsing.
  std::unordered_set<Tid> prepared;
  wal::LogReader reader(device_result->get());
  auto scan =
      reader.ForEach(0, [&](const wal::LogRecord& record) -> Status {
        if (record.type == wal::RecordType::kPrepare) {
          prepared.insert(record.tid);
        } else if (record.type == wal::RecordType::kCommit ||
                   record.type == wal::RecordType::kAbort) {
          prepared.erase(record.tid);
        }
        return Status::OK();
      });
  if (!scan.ok()) return scan.status();
  return !prepared.empty();
}

}  // namespace hyrise_nv::recovery
