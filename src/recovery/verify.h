#ifndef HYRISE_NV_RECOVERY_VERIFY_H_
#define HYRISE_NV_RECOVERY_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/pheap.h"
#include "nvm/pmem_region.h"

namespace hyrise_nv::recovery {

/// How much of the NVM image to validate at open.
enum class ValidationLevel {
  /// Region-header prologue CRC only — the instant-restart hot path.
  kFastHeaderOnly,
  /// Walk every persistent structure: allocator free lists, commit table,
  /// catalog, per-table descriptors, dictionary sortedness, attribute-
  /// vector value-id bounds, MVCC stamp sanity, index↔table cross-checks,
  /// and all checksum seals that are authoritative for this image.
  kDeep,
};

/// How a finding constrains continued use of the image.
enum class FindingSeverity {
  /// Region-global structure is broken; nothing in the image is
  /// trustworthy (header, commit table, catalog spine).
  kFatal,
  /// Damage is confined to one table; other tables remain servable.
  kTable,
  /// Reads are unaffected but allocating would corrupt further state
  /// (e.g. a broken free list). Read-only use is safe.
  kWriteHazard,
  /// Diagnostics-only damage (e.g. a corrupt flight recorder). Reported
  /// and quarantined, but never blocks opening or salvaging the image.
  kAdvisory,
};

/// One verification failure, attributed to a structure class and (when
/// table-scoped) a table.
struct VerifyFinding {
  /// Structure class: "region_header", "allocator_meta", "commit_table",
  /// "catalog", "table_meta", "schema", "pvector_descriptor",
  /// "dictionary", "attribute_vector", "mvcc", or "index".
  std::string structure;
  /// Table name (or "table@<offset>" if the name itself is damaged);
  /// empty for region-global findings.
  std::string table;
  /// PTableMeta offset of the affected table; 0 for region-global.
  uint64_t table_meta_off = 0;
  FindingSeverity severity = FindingSeverity::kTable;
  std::string detail;
};

/// Outcome of DeepVerify.
struct VerifyReport {
  bool deep = false;
  /// Whether the image recorded a clean shutdown, which makes the
  /// close-time seals (descriptors, delta content, MVCC, indexes)
  /// authoritative. Merge-time main-column seals are checked regardless.
  bool sealed_image = false;
  uint64_t tables_checked = 0;
  uint64_t structures_checked = 0;
  std::vector<VerifyFinding> findings;

  bool clean() const { return findings.empty(); }
  bool has_fatal() const;
  /// Whether any finding should block a non-salvage open. Advisory
  /// findings never do.
  bool blocking() const;
  bool HasStructure(const std::string& structure) const;
  /// Compact one-line description of the findings, for status messages.
  std::string Summary() const;
};

/// Walks every persistent structure of `region` and reports anything
/// inconsistent. Read-only: never mutates the image, so it is safe to run
/// before deciding whether to trust, salvage, or discard it.
VerifyReport DeepVerify(const nvm::PmemRegion& region);

/// Writes and persists every checksum seal (allocator metadata, commit
/// table, catalog, per-table descriptors and content, index content).
/// Called on clean shutdown, immediately before MarkClean — the seals are
/// only authoritative when the clean_shutdown flag is set, so ordinary
/// mutations may leave them stale without harm.
void SealForCleanShutdown(alloc::PHeap& heap);

}  // namespace hyrise_nv::recovery

#endif  // HYRISE_NV_RECOVERY_VERIFY_H_
