#ifndef HYRISE_NV_CLUSTER_DECISION_LOG_H_
#define HYRISE_NV_CLUSTER_DECISION_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace hyrise_nv::cluster {

/// The coordinator's durable decision log (DESIGN.md §16.3): a tiny
/// CRC-sealed append-only file that makes two-phase commit outcomes
/// survive router restarts.
///
/// Protocol contract (presumed abort):
///  - A COMMIT decision is fsynced here BEFORE any decide-commit is sent
///    to a participant. A gtid present in the log is committed, period.
///  - ABORT decisions are appended but never need the fsync: an in-doubt
///    gtid absent from the log is aborted by presumption, which covers
///    both an unlogged abort and a coordinator crash before the decision.
///  - RETIRE records mark a gtid fully acknowledged by every participant;
///    retired gtids drop out of the in-memory committed set so it stays
///    bounded (the file itself is append-only and tiny: ~25 bytes per
///    cross-shard transaction).
///
/// Gtids are epoch-qualified: `epoch << 32 | seq`, where the epoch is a
/// header counter bumped and fsynced at every open. A restarted router
/// can therefore never mint a gtid that collides with one a dead
/// incarnation prepared but did not log.
///
/// Thread-safe: all methods lock internally (2PC traffic is rare
/// relative to single-shard commits, one mutex is fine).
class DecisionLog {
 public:
  static Result<std::unique_ptr<DecisionLog>> Open(const std::string& path);
  ~DecisionLog();

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(DecisionLog);

  /// Mints the next globally-unique transaction id.
  uint64_t NextGtid();

  /// Durably records a commit decision (append + fsync). Must return OK
  /// before any decide-commit goes out.
  Status LogCommit(uint64_t gtid);
  /// Records an abort decision (append, no fsync needed — absence from
  /// the log already means abort).
  Status LogAbort(uint64_t gtid);
  /// Records that every participant acknowledged the decision for
  /// `gtid`; forgets it from the committed set.
  Status LogRetired(uint64_t gtid);

  /// Whether `gtid` has a durable commit decision. The recovery
  /// handshake answer: in-doubt and committed → decide commit; in-doubt
  /// and unknown → presumed abort.
  bool KnownCommit(uint64_t gtid) const;

  /// Whether `gtid` has a logged abort decision. Needed for
  /// current-epoch gtids: presumed abort only applies to dead epochs, so
  /// a participant that durably logged a prepare whose ack the crash
  /// swallowed (coordinator saw a failed prepare and aborted) would stay
  /// in-doubt forever without this lookup.
  bool KnownAbort(uint64_t gtid) const;

  uint64_t epoch() const { return epoch_; }
  size_t live_commits() const;

 private:
  DecisionLog() = default;

  Status AppendRecord(uint8_t type, uint64_t gtid, bool sync);

  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 0;
  std::unordered_set<uint64_t> committed_;
  std::unordered_set<uint64_t> aborted_;
};

}  // namespace hyrise_nv::cluster

#endif  // HYRISE_NV_CLUSTER_DECISION_LOG_H_
