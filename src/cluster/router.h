#ifndef HYRISE_NV_CLUSTER_ROUTER_H_
#define HYRISE_NV_CLUSTER_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "common/status.h"

namespace hyrise_nv::cluster {

/// One backend `hyrise_nv_server` endpoint.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

struct RouterOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (tests).
  uint16_t port = 0;
  std::vector<ShardEndpoint> shards;
  /// Directory holding the coordinator decision log ("decisions.log").
  std::string data_dir;
  Partitioning partitioning = Partitioning::kHash;
  /// kRange only: keys per shard (TPC-C: warehouses / num_shards).
  int64_t range_width = 1;
  /// Per-session shard-client reconnect budget. Sized so a session op
  /// rides out a shard kill -9 + instant restart (the whole point).
  int shard_max_retries = 12;
  int shard_connect_timeout_ms = 1'000;
  int shard_read_timeout_ms = 10'000;
  /// In-doubt resolver sweep interval.
  int resolver_interval_ms = 200;
};

/// Multi-shard front door (DESIGN.md §16): speaks the NVQL wire protocol
/// to clients, partitions keys across N backend shards by the ShardMap,
/// fans scans/counts out and merges, and runs two-phase commit with a
/// durable coordinator decision log for transactions that touched more
/// than one shard. Single-shard transactions commit by passthrough — the
/// common TPC-C case pays no 2PC tax.
///
/// Sessions are thread-per-connection with per-session shard clients
/// (the Client is not thread-safe); a background resolver converges
/// in-doubt transactions on restarted shards from the decision log
/// (commit if logged, presumed abort for dead-epoch gtids).
///
/// Row locations returned to clients carry the owning shard id in bits
/// 56..63 of `row`, so point updates/deletes route back without any
/// lookup; the tag is stripped before the location reaches a shard.
class Router {
 public:
  static Result<std::unique_ptr<Router>> Start(const RouterOptions& options);
  ~Router();

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Router);

  uint16_t port() const;
  /// Stops accepting, closes every session, stops the resolver. Called
  /// by the destructor; idempotent.
  void Stop();

 private:
  class Impl;
  explicit Router(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace hyrise_nv::cluster

#endif  // HYRISE_NV_CLUSTER_ROUTER_H_
