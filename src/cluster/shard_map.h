#ifndef HYRISE_NV_CLUSTER_SHARD_MAP_H_
#define HYRISE_NV_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/types.h"

namespace hyrise_nv::cluster {

/// How keys map to shards (DESIGN.md §16.1).
enum class Partitioning : uint8_t {
  /// shard = mix64(key) % num_shards — uniform, order-free.
  kHash,
  /// shard = key / range_width (clamped) — contiguous key ranges per
  /// shard, the TPC-C by-warehouse layout: range_width = warehouses per
  /// shard, so warehouse w lives wholly on shard w / range_width and
  /// single-warehouse transactions never cross shards.
  kRange,
};

/// Pluggable key→shard partitioning function. By convention the shard
/// key is column 0 of every sharded table (the TPC-C warehouse id); the
/// router extracts it from inserted rows and equality predicates on
/// column 0, and fans out everything else.
///
/// Immutable after construction — safe to share across session threads.
class ShardMap {
 public:
  ShardMap(size_t num_shards, Partitioning partitioning,
           int64_t range_width = 1)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        partitioning_(partitioning),
        range_width_(range_width < 1 ? 1 : range_width) {}

  size_t num_shards() const { return num_shards_; }
  Partitioning partitioning() const { return partitioning_; }
  int64_t range_width() const { return range_width_; }

  /// The shard owning `key`. Strings always hash (ranges over strings
  /// are not supported); doubles hash their bit pattern.
  size_t ShardForKey(const storage::Value& key) const;

  /// {"num_shards":N,"partitioning":"hash"|"range","range_width":W}
  std::string ToJson() const;

 private:
  size_t num_shards_;
  Partitioning partitioning_;
  int64_t range_width_;
};

}  // namespace hyrise_nv::cluster

#endif  // HYRISE_NV_CLUSTER_SHARD_MAP_H_
