#include "cluster/router.h"

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_set>

#include "cluster/decision_log.h"
#include "common/logging.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/wire.h"

namespace hyrise_nv::cluster {

namespace {

using net::MakeErrorPayload;
using net::MakeStatusPayload;
using net::Opcode;
using net::WireCode;
using net::WireReader;
using net::WireWriter;

/// Shard id lives in bits 56..63 of RowLocation.row at the router
/// boundary (engine rows never get near 2^56). Tagged on the way out,
/// stripped on the way back in.
constexpr uint64_t kShardTagShift = 56;
constexpr uint64_t kRowMask = (1ull << kShardTagShift) - 1;

storage::RowLocation TagLoc(storage::RowLocation loc, size_t shard) {
  loc.row |= static_cast<uint64_t>(shard) << kShardTagShift;
  return loc;
}

size_t LocShard(storage::RowLocation loc) {
  return static_cast<size_t>(loc.row >> kShardTagShift);
}

storage::RowLocation UntagLoc(storage::RowLocation loc) {
  loc.row &= kRowMask;
  return loc;
}

/// Extracts `"serving_state":"..."` from a recovery-info JSON blob.
std::string ParseServingState(const std::string& json) {
  const std::string key = "\"serving_state\":\"";
  const size_t pos = json.find(key);
  if (pos == std::string::npos) return "ready";
  const size_t start = pos + key.size();
  const size_t end = json.find('"', start);
  if (end == std::string::npos) return "ready";
  return json.substr(start, end - start);
}

}  // namespace

class Router::Impl {
 public:
  explicit Impl(const RouterOptions& options)
      : options_(options),
        shard_map_(options.shards.size(), options.partitioning,
                   options.range_width) {}

  ~Impl() { Stop(); }

  Status Start() {
    if (options_.shards.empty()) {
      return Status::InvalidArgument("router needs at least one shard");
    }
    if (options_.data_dir.empty()) {
      return Status::InvalidArgument(
          "router needs a data_dir for the decision log");
    }
    auto log_result =
        DecisionLog::Open(options_.data_dir + "/decisions.log");
    if (!log_result.ok()) return log_result.status();
    decision_log_ = std::move(log_result).ValueUnsafe();

    auto listener_result =
        net::CreateListener(options_.host, options_.port);
    if (!listener_result.ok()) return listener_result.status();
    listen_fd_ = std::move(listener_result).ValueUnsafe();
    auto port_result = net::LocalPort(listen_fd_.get());
    if (!port_result.ok()) return port_result.status();
    port_ = *port_result;

    resolver_ = std::thread([this] { ResolverLoop(); });
    acceptor_ = std::thread([this] { AcceptLoop(); });
    HYRISE_NV_LOG(kInfo) << "router listening on " << options_.host << ":"
                         << port_ << " with " << options_.shards.size()
                         << " shards (" << shard_map_.ToJson() << ")";
    return Status::OK();
  }

  uint16_t port() const { return port_; }

  void Stop() {
    bool expected = false;
    if (!stop_.compare_exchange_strong(expected, true)) return;
    resolver_cv_.notify_all();
    if (acceptor_.joinable()) acceptor_.join();
    if (resolver_.joinable()) resolver_.join();
    {
      std::lock_guard<std::mutex> guard(sessions_mutex_);
      for (auto& session : sessions_) {
        if (session->fd.valid()) {
          ::shutdown(session->fd.get(), SHUT_RDWR);
        }
      }
    }
    for (;;) {
      std::unique_ptr<Session> session;
      {
        std::lock_guard<std::mutex> guard(sessions_mutex_);
        if (sessions_.empty()) break;
        session = std::move(sessions_.back());
        sessions_.pop_back();
      }
      if (session->thread.joinable()) session->thread.join();
    }
  }

 private:
  struct Session {
    net::OwnedFd fd;
    uint64_t id = 0;
    std::thread thread;
  };

  /// Everything a session thread owns: one lazily-connected Client per
  /// shard (the Client is single-threaded, so clients are per-session),
  /// plus the state of the at-most-one open client transaction.
  struct SessionCtx {
    std::vector<std::unique_ptr<net::Client>> clients;
    std::set<size_t> txn_shards;  // shards with an open backend txn
    bool txn_open = false;
    uint64_t vtid = 0;  // router-minted tid handed to the client
  };

  struct PendingDecide {
    size_t shard;
    uint64_t gtid;
    bool commit;
  };

  size_t num_shards() const { return options_.shards.size(); }

  net::ClientOptions ShardClientOptions(size_t shard) const {
    net::ClientOptions opts;
    opts.host = options_.shards[shard].host;
    opts.port = options_.shards[shard].port;
    opts.connect_timeout_ms = options_.shard_connect_timeout_ms;
    opts.read_timeout_ms = options_.shard_read_timeout_ms;
    opts.max_retries = options_.shard_max_retries;
    return opts;
  }

  // --- Accept / session plumbing -----------------------------------------

  void AcceptLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd_.get(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (fd < 0) continue;
      (void)net::ConfigureAcceptedSocket(fd);
      auto session = std::make_unique<Session>();
      session->fd = net::OwnedFd(fd);
      session->id = ++next_session_id_;
      Session* raw = session.get();
      session->thread = std::thread([this, raw] { SessionLoop(raw); });
      std::lock_guard<std::mutex> guard(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
  }

  void SessionLoop(Session* session) {
    sessions_open_.fetch_add(1, std::memory_order_relaxed);
    SessionCtx ctx;
    ctx.clients.resize(num_shards());
    bool handshaken = false;
    uint16_t version = 1;
    const int fd = session->fd.get();
    for (;;) {
      // Pre-handshake traffic (and the whole hello exchange) is always
      // v1-framed; a negotiated v2 session switches to tagged frames on
      // the first post-hello frame, and the router echoes each request's
      // tag on its response. The session is processed strictly FIFO —
      // a legal v2 completion order — so pipelined clients simply keep
      // the router's socket fed.
      uint32_t tag = 0;
      std::vector<uint8_t> payload;
      if (version >= 2) {
        auto frame_result = net::ReadTaggedFrame(fd);
        if (!frame_result.ok()) break;
        tag = frame_result->tag;
        payload = std::move(frame_result->payload);
      } else {
        auto frame_result = net::ReadFrame(fd);
        if (!frame_result.ok()) break;
        payload = std::move(*frame_result);
      }
      if (payload.empty()) break;
      const uint8_t op_byte = payload[0];
      if (!net::IsKnownOpcode(op_byte)) break;
      const Opcode op = static_cast<Opcode>(op_byte);
      WireReader reader(payload.data() + 1, payload.size() - 1);
      if (!handshaken) {
        if (op != Opcode::kHello) break;
        std::vector<uint8_t> response;
        uint16_t chosen = 1;
        if (!HandleHello(session, reader, &response, &chosen)) {
          (void)net::WriteFrame(fd, response);
          break;
        }
        handshaken = true;
        if (!net::WriteFrame(fd, response).ok()) break;
        version = chosen;
        continue;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> response;
      bool close_after = false;
      if (draining_.load(std::memory_order_acquire) &&
          op != Opcode::kDrain) {
        response =
            MakeErrorPayload(op, WireCode::kDraining, "router is draining");
      } else {
        response = Route(op, &ctx, reader, &close_after);
      }
      const Status write_status =
          version >= 2 ? net::WriteTaggedFrame(fd, tag, response)
                       : net::WriteFrame(fd, response);
      if (!write_status.ok()) break;
      if (close_after) break;
    }
    // Client gone with a transaction still open: abort it on every shard
    // it touched. Prepared (2PC) work is never here — prepare hands the
    // backend transaction over to the shard's prepared registry and the
    // commit path clears the session state.
    if (ctx.txn_open) {
      for (size_t shard : ctx.txn_shards) {
        if (ctx.clients[shard] && ctx.clients[shard]->connected()) {
          (void)ctx.clients[shard]->Abort();
        }
      }
    }
    sessions_open_.fetch_add(-1, std::memory_order_relaxed);
  }

  bool HandleHello(Session* session, WireReader& reader,
                   std::vector<uint8_t>* response, uint16_t* chosen_out) {
    const uint32_t magic = reader.U32();
    const uint16_t min_version = reader.U16();
    const uint16_t max_version = reader.U16();
    uint32_t requested_window = 0;
    if (reader.ok() && reader.remaining() >= sizeof(uint32_t)) {
      requested_window = reader.U32();
    }
    if (!reader.ok() || magic != net::kHelloMagic) {
      *response = MakeErrorPayload(Opcode::kHello,
                                   WireCode::kProtocolError, "bad hello");
      return false;
    }
    if (min_version > net::kProtocolVersionMax ||
        max_version < net::kProtocolVersionMin) {
      *response = MakeErrorPayload(Opcode::kHello, WireCode::kNotSupported,
                                   "no common protocol version");
      return false;
    }
    const uint16_t chosen =
        std::min(max_version, net::kProtocolVersionMax);
    WireWriter writer(response);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U16(chosen);
    writer.U8(shard_mode_.load(std::memory_order_relaxed));
    writer.U64(session->id);
    if (chosen >= 2) {
      // The router never sheds on window overflow (its session loop is
      // FIFO — excess requests just queue in the socket), so granting
      // the requested window verbatim is safe.
      uint32_t window = requested_window == 0 ? net::kDefaultPipelineWindow
                                              : requested_window;
      window = std::min(std::max(window, 1u), net::kMaxPipelineWindow);
      writer.U32(window);
    }
    *chosen_out = chosen;
    return true;
  }

  // --- Shard access helpers ----------------------------------------------

  Result<net::Client*> EnsureClient(SessionCtx* ctx, size_t shard) {
    if (ctx->clients[shard] == nullptr) {
      ctx->clients[shard] =
          std::make_unique<net::Client>(ShardClientOptions(shard));
    }
    net::Client* client = ctx->clients[shard].get();
    if (!client->connected()) {
      HYRISE_NV_RETURN_NOT_OK(client->Connect());
      shard_mode_.store(client->server_mode(), std::memory_order_relaxed);
    }
    return client;
  }

  /// Client + an open backend transaction on `shard` (lazily begun the
  /// first time the client transaction touches the shard).
  Result<net::Client*> EnsureTxn(SessionCtx* ctx, size_t shard) {
    auto client_result = EnsureClient(ctx, shard);
    if (!client_result.ok()) return client_result;
    if (ctx->txn_shards.count(shard) == 0) {
      auto begin_result = (*client_result)->Begin();
      if (!begin_result.ok()) return begin_result.status();
      ctx->txn_shards.insert(shard);
    }
    return client_result;
  }

  void ClearTxn(SessionCtx* ctx) {
    ctx->txn_open = false;
    ctx->txn_shards.clear();
    ctx->vtid = 0;
  }

  Status CheckTid(const SessionCtx& ctx, uint64_t tid) const {
    if (!ctx.txn_open) {
      return Status::InvalidArgument("no open transaction on this session");
    }
    if (tid != 0 && tid != ctx.vtid) {
      return Status::InvalidArgument(
          "transaction id " + std::to_string(tid) +
          " does not match this session's open transaction " +
          std::to_string(ctx.vtid));
    }
    return Status::OK();
  }

  // --- Routing ------------------------------------------------------------

  std::vector<uint8_t> Route(Opcode op, SessionCtx* ctx, WireReader& reader,
                             bool* close_after) {
    switch (op) {
      case Opcode::kPing:
        return MakeStatusPayload(op, Status::OK());
      case Opcode::kBegin:
        return ExecBegin(ctx);
      case Opcode::kCommit:
        return ExecCommit(ctx, reader);
      case Opcode::kAbort:
        return ExecAbort(ctx, reader);
      case Opcode::kInsert:
        return ExecInsert(ctx, reader);
      case Opcode::kUpdate:
        return ExecUpdate(ctx, reader);
      case Opcode::kDelete:
        return ExecDelete(ctx, reader);
      case Opcode::kDmlBatch:
        return ExecDmlBatch(ctx, reader);
      case Opcode::kScanEqual:
      case Opcode::kScanRange:
        return ExecScan(op, ctx, reader);
      case Opcode::kCount:
        return ExecCount(ctx, reader);
      case Opcode::kCreateTable:
        return ExecCreateTable(ctx, reader);
      case Opcode::kCreateIndex:
        return ExecCreateIndex(ctx, reader);
      case Opcode::kCheckpoint:
        return ExecBroadcastStatus(
            op, ctx, [](net::Client* c) { return c->Checkpoint(); });
      case Opcode::kStats:
        return ExecStats(ctx);
      case Opcode::kRecoveryInfo:
        return ExecRecoveryInfo(ctx);
      case Opcode::kDrain:
        // Drains the router only; shards are drained by their own
        // operators (a router drain must not take healthy shards down).
        draining_.store(true, std::memory_order_release);
        *close_after = true;
        return MakeStatusPayload(op, Status::OK());
      case Opcode::kPrepare:
      case Opcode::kDecide:
      case Opcode::kInDoubt:
        return MakeStatusPayload(
            op, Status::NotSupported(
                    "the router coordinates 2PC; only shards accept "
                    "prepare/decide/in_doubt"));
      case Opcode::kHello:
        break;
    }
    return MakeErrorPayload(op, WireCode::kInternal, "unroutable opcode");
  }

  std::vector<uint8_t> ExecBegin(SessionCtx* ctx) {
    if (ctx->txn_open) {
      return MakeErrorPayload(
          Opcode::kBegin, WireCode::kInvalidArgument,
          "session already has an open transaction (tid " +
              std::to_string(ctx->vtid) + ")");
    }
    ctx->txn_open = true;
    ctx->vtid = next_vtid_.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kBegin));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(ctx->vtid);
    // No global snapshot exists across shards (DESIGN.md §16.5): each
    // shard transaction snapshots independently when first touched.
    writer.U64(0);
    return payload;
  }

  std::vector<uint8_t> ExecInsert(SessionCtx* ctx, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table = reader.Str();
    const std::vector<storage::Value> row = reader.Row();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kInsert, WireCode::kInvalidArgument,
                              "malformed insert body");
    }
    Status status = CheckTid(*ctx, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kInsert, status);
    if (row.empty()) {
      return MakeErrorPayload(Opcode::kInsert, WireCode::kInvalidArgument,
                              "cannot shard an empty row");
    }
    const size_t shard = shard_map_.ShardForKey(row[0]);
    auto client_result = EnsureTxn(ctx, shard);
    if (!client_result.ok()) {
      return MakeStatusPayload(Opcode::kInsert, client_result.status());
    }
    auto loc_result = (*client_result)->Insert(table, row);
    if (!loc_result.ok()) {
      return MakeStatusPayload(Opcode::kInsert, loc_result.status());
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kInsert));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Loc(TagLoc(*loc_result, shard));
    return payload;
  }

  std::vector<uint8_t> ExecUpdate(SessionCtx* ctx, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table = reader.Str();
    const storage::RowLocation tagged = reader.Loc();
    const std::vector<storage::Value> row = reader.Row();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kUpdate, WireCode::kInvalidArgument,
                              "malformed update body");
    }
    Status status = CheckTid(*ctx, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kUpdate, status);
    const size_t shard = LocShard(tagged);
    if (shard >= num_shards()) {
      return MakeErrorPayload(Opcode::kUpdate, WireCode::kInvalidArgument,
                              "row location names an unknown shard");
    }
    if (!row.empty() && shard_map_.ShardForKey(row[0]) != shard) {
      // The new key hashes elsewhere; the row would be orphaned on the
      // old shard. Callers must delete + insert explicitly.
      return MakeStatusPayload(
          Opcode::kUpdate,
          Status::NotSupported("update may not move a row across shards "
                               "(shard key changed)"));
    }
    auto client_result = EnsureTxn(ctx, shard);
    if (!client_result.ok()) {
      return MakeStatusPayload(Opcode::kUpdate, client_result.status());
    }
    auto loc_result =
        (*client_result)->Update(table, UntagLoc(tagged), row);
    if (!loc_result.ok()) {
      return MakeStatusPayload(Opcode::kUpdate, loc_result.status());
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kUpdate));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Loc(TagLoc(*loc_result, shard));
    return payload;
  }

  std::vector<uint8_t> ExecDelete(SessionCtx* ctx, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table = reader.Str();
    const storage::RowLocation tagged = reader.Loc();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kDelete, WireCode::kInvalidArgument,
                              "malformed delete body");
    }
    Status status = CheckTid(*ctx, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kDelete, status);
    const size_t shard = LocShard(tagged);
    if (shard >= num_shards()) {
      return MakeErrorPayload(Opcode::kDelete, WireCode::kInvalidArgument,
                              "row location names an unknown shard");
    }
    auto client_result = EnsureTxn(ctx, shard);
    if (!client_result.ok()) {
      return MakeStatusPayload(Opcode::kDelete, client_result.status());
    }
    status = (*client_result)->Delete(table, UntagLoc(tagged));
    return MakeStatusPayload(Opcode::kDelete, status);
  }

  /// Batched autocommit DML rides through the router when every op in
  /// the batch lands on ONE shard — then the whole batch forwards as a
  /// single frame and keeps its one-fsync/one-publish atomicity. A batch
  /// spanning shards would need 2PC to stay atomic; callers split per
  /// shard instead (kNotSupported tells them so).
  std::vector<uint8_t> ExecDmlBatch(SessionCtx* ctx, WireReader& reader) {
    constexpr Opcode kOp = Opcode::kDmlBatch;
    if (ctx->txn_open) {
      return MakeErrorPayload(
          kOp, WireCode::kInvalidArgument,
          "dml_batch is autocommit; commit or abort the session "
          "transaction first");
    }
    const uint32_t count = reader.U32();
    if (!reader.ok() || count == 0) {
      return MakeErrorPayload(kOp, WireCode::kInvalidArgument,
                              "malformed dml_batch body");
    }
    std::vector<net::Client::DmlOp> ops;
    ops.reserve(count);
    size_t shard = SIZE_MAX;
    for (uint32_t i = 0; i < count; ++i) {
      net::Client::DmlOp op;
      op.kind = reader.U8();
      op.table = reader.Str();
      size_t op_shard = SIZE_MAX;
      if (op.kind == net::Client::DmlOp::kInsert) {
        op.row = reader.Row();
        if (!reader.ok() || op.row.empty()) {
          return MakeErrorPayload(kOp, WireCode::kInvalidArgument,
                                  "malformed dml_batch body");
        }
        op_shard = shard_map_.ShardForKey(op.row[0]);
      } else if (op.kind == net::Client::DmlOp::kUpdate ||
                 op.kind == net::Client::DmlOp::kDelete) {
        const storage::RowLocation tagged = reader.Loc();
        if (op.kind == net::Client::DmlOp::kUpdate) op.row = reader.Row();
        if (!reader.ok()) {
          return MakeErrorPayload(kOp, WireCode::kInvalidArgument,
                                  "malformed dml_batch body");
        }
        op_shard = LocShard(tagged);
        if (op_shard >= num_shards()) {
          return MakeErrorPayload(
              kOp, WireCode::kInvalidArgument,
              "op " + std::to_string(i) +
                  ": row location names an unknown shard");
        }
        if (op.kind == net::Client::DmlOp::kUpdate && !op.row.empty() &&
            shard_map_.ShardForKey(op.row[0]) != op_shard) {
          return MakeStatusPayload(
              kOp, Status::NotSupported(
                       "op " + std::to_string(i) +
                       ": update may not move a row across shards"));
        }
        op.loc = UntagLoc(tagged);
      } else {
        return MakeErrorPayload(kOp, WireCode::kInvalidArgument,
                                "malformed dml_batch op");
      }
      if (shard == SIZE_MAX) {
        shard = op_shard;
      } else if (shard != op_shard) {
        return MakeStatusPayload(
            kOp, Status::NotSupported(
                     "dml_batch ops span shards " + std::to_string(shard) +
                     " and " + std::to_string(op_shard) +
                     "; split the batch per shard to keep it atomic"));
      }
      ops.push_back(std::move(op));
    }
    auto client_result = EnsureClient(ctx, shard);
    if (!client_result.ok()) {
      return MakeStatusPayload(kOp, client_result.status());
    }
    auto batch_result = (*client_result)->DmlBatch(ops);
    if (!batch_result.ok()) {
      return MakeStatusPayload(kOp, batch_result.status());
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(kOp));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U32(count);
    for (const storage::RowLocation& loc : batch_result->locs) {
      writer.Loc(TagLoc(loc, shard));
    }
    writer.U64(batch_result->cid);
    return payload;
  }

  std::vector<uint8_t> ExecScan(Opcode op, SessionCtx* ctx,
                                WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table = reader.Str();
    const uint32_t column = reader.U32();
    const storage::Value value = reader.Value();
    storage::Value hi;
    if (op == Opcode::kScanRange) hi = reader.Value();
    const uint32_t limit = reader.U32();
    if (!reader.ok()) {
      return MakeErrorPayload(op, WireCode::kInvalidArgument,
                              "malformed scan body");
    }
    const bool in_txn = tid != 0;
    if (in_txn) {
      Status status = CheckTid(*ctx, tid);
      if (!status.ok()) return MakeStatusPayload(op, status);
    }
    // Equality on the shard-key column (column 0 by convention) routes
    // to exactly one shard; everything else fans out and merges.
    std::vector<size_t> targets;
    if (op == Opcode::kScanEqual && column == 0) {
      targets.push_back(shard_map_.ShardForKey(value));
    } else {
      for (size_t s = 0; s < num_shards(); ++s) targets.push_back(s);
    }
    std::vector<std::pair<size_t, net::WireRow>> rows;
    bool truncated = false;
    for (size_t shard : targets) {
      auto client_result = EnsureClient(ctx, shard);
      if (!client_result.ok()) {
        return MakeStatusPayload(op, client_result.status());
      }
      // A shard the transaction never wrote reads through an ad-hoc
      // snapshot instead (there is no shard transaction to read through).
      const bool shard_in_txn = in_txn && ctx->txn_shards.count(shard) > 0;
      Result<net::ScanResult> scan_result =
          op == Opcode::kScanEqual
              ? (*client_result)
                    ->ScanEqual(table, column, value, shard_in_txn, limit)
              : (*client_result)
                    ->ScanRange(table, column, value, hi, shard_in_txn,
                                limit);
      if (!scan_result.ok()) {
        return MakeStatusPayload(op, scan_result.status());
      }
      truncated = truncated || scan_result->truncated;
      for (auto& row : scan_result->rows) {
        rows.emplace_back(shard, std::move(row));
      }
    }
    if (limit > 0 && rows.size() > limit) {
      rows.resize(limit);
      truncated = true;
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(op));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U8(truncated ? 1 : 0);
    writer.U32(static_cast<uint32_t>(rows.size()));
    for (const auto& [shard, row] : rows) {
      writer.Loc(TagLoc(row.loc, shard));
      writer.Row(row.values);
    }
    return payload;
  }

  std::vector<uint8_t> ExecCount(SessionCtx* ctx, WireReader& reader) {
    const uint64_t tid = reader.U64();
    const std::string table = reader.Str();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kCount, WireCode::kInvalidArgument,
                              "malformed count body");
    }
    const bool in_txn = tid != 0;
    if (in_txn) {
      Status status = CheckTid(*ctx, tid);
      if (!status.ok()) return MakeStatusPayload(Opcode::kCount, status);
    }
    uint64_t total = 0;
    for (size_t shard = 0; shard < num_shards(); ++shard) {
      auto client_result = EnsureClient(ctx, shard);
      if (!client_result.ok()) {
        return MakeStatusPayload(Opcode::kCount, client_result.status());
      }
      const bool shard_in_txn = in_txn && ctx->txn_shards.count(shard) > 0;
      auto count_result = (*client_result)->Count(table, shard_in_txn);
      if (!count_result.ok()) {
        return MakeStatusPayload(Opcode::kCount, count_result.status());
      }
      total += *count_result;
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCount));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(total);
    return payload;
  }

  // --- Commit: single-shard passthrough vs two-phase commit ---------------

  std::vector<uint8_t> ExecCommit(SessionCtx* ctx, WireReader& reader) {
    const uint64_t tid = reader.U64();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kCommit, WireCode::kInvalidArgument,
                              "malformed commit body");
    }
    Status status = CheckTid(*ctx, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kCommit, status);

    std::vector<uint8_t> response;
    if (ctx->txn_shards.empty()) {
      // Pure-router transaction (no shard ever touched): trivially
      // committed.
      WireWriter writer(&response);
      writer.U8(static_cast<uint8_t>(Opcode::kCommit));
      writer.U8(static_cast<uint8_t>(WireCode::kOk));
      writer.U64(0);
    } else if (ctx->txn_shards.size() == 1) {
      response = CommitSingleShard(ctx, *ctx->txn_shards.begin());
    } else {
      response = CommitTwoPhase(ctx);
    }
    ClearTxn(ctx);
    return response;
  }

  std::vector<uint8_t> CommitSingleShard(SessionCtx* ctx, size_t shard) {
    single_shard_commits_.fetch_add(1, std::memory_order_relaxed);
    auto cid_result = ctx->clients[shard]->Commit();
    if (!cid_result.ok()) {
      return MakeStatusPayload(Opcode::kCommit, cid_result.status());
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCommit));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(*cid_result);
    return payload;
  }

  std::vector<uint8_t> CommitTwoPhase(SessionCtx* ctx) {
    cross_shard_commits_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t gtid = decision_log_->NextGtid();

    // Phase one: prepare everywhere. First failure wins and flips the
    // outcome to abort.
    std::vector<size_t> prepared;
    std::vector<size_t> unprepared;
    Status failure;
    for (size_t shard : ctx->txn_shards) {
      if (failure.ok()) {
        Status status = ctx->clients[shard]->Prepare(gtid);
        if (status.ok()) {
          prepared.push_back(shard);
          continue;
        }
        failure = status;
      }
      unprepared.push_back(shard);
    }

    if (!failure.ok()) {
      twopc_aborts_.fetch_add(1, std::memory_order_relaxed);
      // Abort decision. No fsync needed: absence from the log is already
      // abort (presumed abort); the append is for forensics.
      (void)decision_log_->LogAbort(gtid);
      for (size_t shard : prepared) {
        if (!ctx->clients[shard]->Decide(gtid, false).ok()) {
          EnqueueDecide(shard, gtid, false);
        }
      }
      // Shards that never prepared (or whose prepare failed cleanly)
      // still hold an open session transaction — normal abort. If the
      // prepare failed on transport, the shard either never saw it
      // (session drop aborts it) or prepared it (it shows up in-doubt
      // and the resolver presumed-aborts it — the gtid is not logged
      // committed).
      for (size_t shard : unprepared) {
        if (ctx->clients[shard]->connected()) {
          (void)ctx->clients[shard]->Abort();
        }
      }
      return MakeStatusPayload(Opcode::kCommit, failure);
    }

    // Decision point: the commit decision is durable in the coordinator
    // log BEFORE any participant learns it. A router crash after this
    // fsync replays the decides from the log; a crash before it aborts
    // by presumption. Participants crashing are converged by the
    // resolver either way.
    Status log_status = decision_log_->LogCommit(gtid);
    if (!log_status.ok()) {
      twopc_aborts_.fetch_add(1, std::memory_order_relaxed);
      for (size_t shard : prepared) {
        if (!ctx->clients[shard]->Decide(gtid, false).ok()) {
          EnqueueDecide(shard, gtid, false);
        }
      }
      return MakeStatusPayload(Opcode::kCommit, log_status);
    }

    // Phase two: decide-commit everywhere. A participant that dropped
    // (kill -9 mid-2PC) gets its decide re-driven by the resolver; the
    // client's commit is already safe — every vote is durably prepared
    // and the decision is durably logged.
    bool all_acked = true;
    for (size_t shard : ctx->txn_shards) {
      if (!ctx->clients[shard]->Decide(gtid, true).ok()) {
        all_acked = false;
        EnqueueDecide(shard, gtid, true);
      }
    }
    if (all_acked) {
      (void)decision_log_->LogRetired(gtid);
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCommit));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    // Cross-shard commits have no single engine CID; the gtid is the
    // client-visible commit token.
    writer.U64(gtid);
    return payload;
  }

  std::vector<uint8_t> ExecAbort(SessionCtx* ctx, WireReader& reader) {
    const uint64_t tid = reader.U64();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kAbort, WireCode::kInvalidArgument,
                              "malformed abort body");
    }
    Status status = CheckTid(*ctx, tid);
    if (!status.ok()) return MakeStatusPayload(Opcode::kAbort, status);
    // Best effort per shard: an unreachable shard's transaction dies
    // with the router's dropped connection (the shard aborts session
    // transactions on disconnect).
    for (size_t shard : ctx->txn_shards) {
      if (ctx->clients[shard] && ctx->clients[shard]->connected()) {
        (void)ctx->clients[shard]->Abort();
      }
    }
    ClearTxn(ctx);
    return MakeStatusPayload(Opcode::kAbort, Status::OK());
  }

  // --- DDL / admin broadcast ----------------------------------------------

  template <typename Fn>
  std::vector<uint8_t> ExecBroadcastStatus(Opcode op, SessionCtx* ctx,
                                           Fn&& fn) {
    for (size_t shard = 0; shard < num_shards(); ++shard) {
      auto client_result = EnsureClient(ctx, shard);
      if (!client_result.ok()) {
        return MakeStatusPayload(op, client_result.status());
      }
      Status status = fn(*client_result);
      if (!status.ok()) return MakeStatusPayload(op, status);
    }
    return MakeStatusPayload(op, Status::OK());
  }

  std::vector<uint8_t> ExecCreateTable(SessionCtx* ctx,
                                       WireReader& reader) {
    const std::string name = reader.Str();
    const uint16_t num_columns = reader.U16();
    std::vector<std::pair<std::string, storage::DataType>> columns;
    for (uint16_t i = 0; i < num_columns && reader.ok(); ++i) {
      std::string col_name = reader.Str();
      const auto type = static_cast<storage::DataType>(reader.U8());
      columns.emplace_back(std::move(col_name), type);
    }
    if (!reader.ok() || columns.size() != num_columns) {
      return MakeErrorPayload(Opcode::kCreateTable,
                              WireCode::kInvalidArgument,
                              "malformed create-table body");
    }
    uint64_t first_id = 0;
    for (size_t shard = 0; shard < num_shards(); ++shard) {
      auto client_result = EnsureClient(ctx, shard);
      if (!client_result.ok()) {
        return MakeStatusPayload(Opcode::kCreateTable,
                                 client_result.status());
      }
      auto id_result = (*client_result)->CreateTable(name, columns);
      if (!id_result.ok()) {
        return MakeStatusPayload(Opcode::kCreateTable, id_result.status());
      }
      if (shard == 0) first_id = *id_result;
    }
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kCreateTable));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U64(first_id);
    return payload;
  }

  std::vector<uint8_t> ExecCreateIndex(SessionCtx* ctx,
                                       WireReader& reader) {
    const std::string table = reader.Str();
    const uint32_t column = reader.U32();
    const uint8_t kind = reader.U8();
    if (!reader.ok()) {
      return MakeErrorPayload(Opcode::kCreateIndex,
                              WireCode::kInvalidArgument,
                              "malformed create-index body");
    }
    return ExecBroadcastStatus(
        Opcode::kCreateIndex, ctx, [&](net::Client* client) {
          return client->CreateIndex(table, column, kind);
        });
  }

  // --- Observability -------------------------------------------------------

  /// Shard serving state for stats/recovery-info: "ready", "degraded",
  /// or "down". Uses the session's own client; a dead shard costs one
  /// fast connect attempt, not the full retry budget.
  std::string ProbeShardState(SessionCtx* ctx, size_t shard) {
    if (ctx->clients[shard] == nullptr) {
      ctx->clients[shard] =
          std::make_unique<net::Client>(ShardClientOptions(shard));
    }
    net::Client* client = ctx->clients[shard].get();
    if (!client->connected() && !client->ConnectOnce().ok()) {
      return "down";
    }
    auto info_result = client->RecoveryInfo();
    if (!info_result.ok()) return "down";
    return ParseServingState(*info_result);
  }

  std::string ClusterJson(SessionCtx* ctx) {
    std::string json = "\"cluster\":{\"shard_map\":" + shard_map_.ToJson() +
                       ",\"shards\":[";
    for (size_t shard = 0; shard < num_shards(); ++shard) {
      if (shard > 0) json += ",";
      json += "{\"id\":" + std::to_string(shard) + ",\"host\":\"" +
              options_.shards[shard].host +
              "\",\"port\":" + std::to_string(options_.shards[shard].port) +
              ",\"state\":\"" + ProbeShardState(ctx, shard) + "\"}";
    }
    json += "]}";
    return json;
  }

  std::vector<uint8_t> ExecStats(SessionCtx* ctx) {
    std::string json =
        "{\"router\":{\"sessions\":" +
        std::to_string(sessions_open_.load(std::memory_order_relaxed)) +
        ",\"requests\":" +
        std::to_string(requests_.load(std::memory_order_relaxed)) +
        ",\"commits_single_shard\":" +
        std::to_string(
            single_shard_commits_.load(std::memory_order_relaxed)) +
        ",\"commits_cross_shard\":" +
        std::to_string(
            cross_shard_commits_.load(std::memory_order_relaxed)) +
        ",\"twopc_aborts\":" +
        std::to_string(twopc_aborts_.load(std::memory_order_relaxed)) +
        ",\"in_doubt_resolved\":" +
        std::to_string(
            in_doubt_resolved_.load(std::memory_order_relaxed)) +
        ",\"decision_epoch\":" + std::to_string(decision_log_->epoch()) +
        ",\"unretired_commits\":" +
        std::to_string(decision_log_->live_commits()) + "}," +
        ClusterJson(ctx) + "}";
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kStats));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Str(json);
    return payload;
  }

  std::vector<uint8_t> ExecRecoveryInfo(SessionCtx* ctx) {
    // The aggregate serving state is the weakest shard's: clients using
    // WaitUntilReady against the router wait for the whole fleet.
    std::string aggregate = "ready";
    std::string shards = "[";
    for (size_t shard = 0; shard < num_shards(); ++shard) {
      const std::string state = ProbeShardState(ctx, shard);
      if (state != "ready") aggregate = "degraded";
      if (shard > 0) shards += ",";
      shards += "{\"id\":" + std::to_string(shard) + ",\"state\":\"" +
                state + "\"}";
    }
    shards += "]";
    const std::string json = "{\"serving_state\":\"" + aggregate +
                             "\",\"shards\":" + shards + "}";
    std::vector<uint8_t> payload;
    WireWriter writer(&payload);
    writer.U8(static_cast<uint8_t>(Opcode::kRecoveryInfo));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.Str(json);
    return payload;
  }

  // --- In-doubt resolution -------------------------------------------------

  void EnqueueDecide(size_t shard, uint64_t gtid, bool commit) {
    {
      std::lock_guard<std::mutex> guard(resolver_mutex_);
      pending_.push_back({shard, gtid, commit});
    }
    resolver_cv_.notify_one();
  }

  /// Background convergence (DESIGN.md §16.4). Two duties:
  ///  1. re-drive decides that failed mid-2PC (participant died between
  ///     prepare-ack and decide) until the participant acks;
  ///  2. handshake every shard's in-doubt list against the decision log:
  ///     logged commit → decide commit; logged abort → decide abort;
  ///     dead-epoch gtid → presumed abort. Current-epoch gtids without a
  ///     logged decision are live 2PC traffic owned by a session — left
  ///     alone.
  void ResolverLoop() {
    std::vector<std::unique_ptr<net::Client>> clients(num_shards());
    for (size_t s = 0; s < num_shards(); ++s) {
      net::ClientOptions opts = ShardClientOptions(s);
      opts.max_retries = 0;  // one attempt per sweep; sweeps repeat
      opts.connect_timeout_ms = 250;
      clients[s] = std::make_unique<net::Client>(opts);
    }
    while (!stop_.load(std::memory_order_acquire)) {
      {
        std::unique_lock<std::mutex> lock(resolver_mutex_);
        resolver_cv_.wait_for(
            lock,
            std::chrono::milliseconds(options_.resolver_interval_ms),
            [this] {
              return stop_.load(std::memory_order_acquire) ||
                     !pending_.empty();
            });
      }
      if (stop_.load(std::memory_order_acquire)) break;
      for (size_t shard = 0; shard < num_shards(); ++shard) {
        net::Client* client = clients[shard].get();
        if (!client->connected() && !client->Connect().ok()) continue;

        // Duty 1: pending decides for this shard.
        std::deque<PendingDecide> mine;
        {
          std::lock_guard<std::mutex> guard(resolver_mutex_);
          for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->shard == shard) {
              mine.push_back(*it);
              it = pending_.erase(it);
            } else {
              ++it;
            }
          }
        }
        for (const PendingDecide& decide : mine) {
          if (client->Decide(decide.gtid, decide.commit).ok()) {
            in_doubt_resolved_.fetch_add(1, std::memory_order_relaxed);
          } else {
            std::lock_guard<std::mutex> guard(resolver_mutex_);
            pending_.push_back(decide);
          }
        }

        // Duty 2: recovery handshake.
        auto in_doubt_result = client->InDoubt();
        if (!in_doubt_result.ok()) continue;
        for (uint64_t gtid : *in_doubt_result) {
          bool commit;
          if (decision_log_->KnownCommit(gtid)) {
            commit = true;
          } else if (decision_log_->KnownAbort(gtid)) {
            // A participant can durably log a prepare whose ack the
            // crash swallowed; the coordinator saw the prepare fail and
            // logged abort, never knowing the shard holds the txn
            // in-doubt. Presumed abort does not cover it (current
            // epoch), so the logged abort must.
            commit = false;
          } else if ((gtid >> 32) != decision_log_->epoch()) {
            commit = false;  // presumed abort: dead epoch, never logged
          } else {
            continue;  // live 2PC owned by a session thread
          }
          if (client->Decide(gtid, commit).ok()) {
            in_doubt_resolved_.fetch_add(1, std::memory_order_relaxed);
            HYRISE_NV_LOG(kInfo)
                << "resolver converged in-doubt gtid " << gtid
                << " on shard " << shard << " -> "
                << (commit ? "commit" : "abort");
          }
        }
      }
    }
  }

  RouterOptions options_;
  ShardMap shard_map_;
  std::unique_ptr<DecisionLog> decision_log_;

  net::OwnedFd listen_fd_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread resolver_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};

  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 0;

  std::mutex resolver_mutex_;
  std::condition_variable resolver_cv_;
  std::deque<PendingDecide> pending_;

  std::atomic<uint64_t> next_vtid_{1};
  std::atomic<uint8_t> shard_mode_{0};
  std::atomic<int64_t> sessions_open_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> single_shard_commits_{0};
  std::atomic<uint64_t> cross_shard_commits_{0};
  std::atomic<uint64_t> twopc_aborts_{0};
  std::atomic<uint64_t> in_doubt_resolved_{0};
};

Router::Router(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Router::~Router() = default;

Result<std::unique_ptr<Router>> Router::Start(const RouterOptions& options) {
  auto impl = std::make_unique<Impl>(options);
  HYRISE_NV_RETURN_NOT_OK(impl->Start());
  return std::unique_ptr<Router>(new Router(std::move(impl)));
}

uint16_t Router::port() const { return impl_->port(); }

void Router::Stop() { impl_->Stop(); }

}  // namespace hyrise_nv::cluster
