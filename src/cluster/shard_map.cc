#include "cluster/shard_map.h"

#include <functional>
#include <variant>

namespace hyrise_nv::cluster {

namespace {

/// splitmix64 finalizer — decorrelates sequential keys (TPC-C ids are
/// dense integers) so hash partitioning spreads them evenly.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

size_t ShardMap::ShardForKey(const storage::Value& key) const {
  if (num_shards_ == 1) return 0;
  if (const auto* i = std::get_if<int64_t>(&key)) {
    if (partitioning_ == Partitioning::kRange) {
      const int64_t v = *i < 0 ? 0 : *i;
      const uint64_t shard = static_cast<uint64_t>(v) /
                             static_cast<uint64_t>(range_width_);
      return shard >= num_shards_ ? num_shards_ - 1
                                  : static_cast<size_t>(shard);
    }
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(*i)) %
                               num_shards_);
  }
  if (const auto* d = std::get_if<double>(&key)) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(*d));
    __builtin_memcpy(&bits, d, sizeof(bits));
    return static_cast<size_t>(Mix64(bits) % num_shards_);
  }
  const auto& s = std::get<std::string>(key);
  return static_cast<size_t>(Mix64(std::hash<std::string>{}(s)) %
                             num_shards_);
}

std::string ShardMap::ToJson() const {
  std::string json = "{\"num_shards\":" + std::to_string(num_shards_) +
                     ",\"partitioning\":\"";
  json += partitioning_ == Partitioning::kRange ? "range" : "hash";
  json += "\",\"range_width\":" + std::to_string(range_width_) + "}";
  return json;
}

}  // namespace hyrise_nv::cluster
