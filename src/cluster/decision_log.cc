#include "cluster/decision_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"

namespace hyrise_nv::cluster {

namespace {

constexpr uint64_t kMagic = 0x32504C4351564Eull;  // "NVQLP2"
constexpr size_t kHeaderBytes = 24;  // magic(8) epoch(8) crc(4) pad(4)
constexpr size_t kRecordBytes = 13;  // type(1) gtid(8) crc(4)

constexpr uint8_t kRecCommit = 1;
constexpr uint8_t kRecAbort = 2;
constexpr uint8_t kRecRetired = 3;

void EncodeHeader(uint8_t out[kHeaderBytes], uint64_t epoch) {
  std::memcpy(out, &kMagic, 8);
  std::memcpy(out + 8, &epoch, 8);
  const uint32_t crc = MaskCrc(Crc32c(out, 16));
  std::memcpy(out + 16, &crc, 4);
  std::memset(out + 20, 0, 4);
}

Status WriteAllAt(int fd, const void* data, size_t len, uint64_t offset) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("decision log write: " +
                             std::string(std::strerror(errno)));
    }
    p += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DecisionLog>> DecisionLog::Open(
    const std::string& path) {
  auto log = std::unique_ptr<DecisionLog>(new DecisionLog());
  log->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (log->fd_ < 0) {
    return Status::IOError("opening decision log " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  const off_t size = ::lseek(log->fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("decision log seek: " +
                           std::string(std::strerror(errno)));
  }

  uint64_t prior_epoch = 0;
  uint64_t valid_end = kHeaderBytes;
  if (static_cast<size_t>(size) >= kHeaderBytes) {
    uint8_t header[kHeaderBytes];
    const ssize_t n = ::pread(log->fd_, header, kHeaderBytes, 0);
    if (n != static_cast<ssize_t>(kHeaderBytes)) {
      return Status::IOError("decision log header read failed");
    }
    uint64_t magic = 0;
    uint32_t crc = 0;
    std::memcpy(&magic, header, 8);
    std::memcpy(&prior_epoch, header + 8, 8);
    std::memcpy(&crc, header + 16, 4);
    if (magic != kMagic || UnmaskCrc(crc) != Crc32c(header, 16)) {
      return Status::Corruption("decision log header is corrupt");
    }
    // Replay every sealed record; a torn tail (crash mid-append) is cut
    // off at the first record that fails its CRC.
    uint64_t offset = kHeaderBytes;
    uint8_t rec[kRecordBytes];
    while (offset + kRecordBytes <= static_cast<uint64_t>(size)) {
      const ssize_t r = ::pread(log->fd_, rec, kRecordBytes,
                                static_cast<off_t>(offset));
      if (r != static_cast<ssize_t>(kRecordBytes)) break;
      uint32_t rec_crc = 0;
      std::memcpy(&rec_crc, rec + 9, 4);
      if (UnmaskCrc(rec_crc) != Crc32c(rec, 9)) {
        HYRISE_NV_LOG(kWarn)
            << "decision log: torn tail at offset " << offset
            << "; truncating";
        break;
      }
      uint64_t gtid = 0;
      std::memcpy(&gtid, rec + 1, 8);
      switch (rec[0]) {
        case kRecCommit:
          log->committed_.insert(gtid);
          break;
        case kRecAbort:
          log->aborted_.insert(gtid);
          break;
        case kRecRetired:
          log->committed_.erase(gtid);
          log->aborted_.erase(gtid);
          break;
        default:
          return Status::Corruption("decision log: unknown record type");
      }
      offset += kRecordBytes;
    }
    valid_end = offset;
    if (valid_end < static_cast<uint64_t>(size) &&
        ::ftruncate(log->fd_, static_cast<off_t>(valid_end)) < 0) {
      return Status::IOError("decision log truncate: " +
                             std::string(std::strerror(errno)));
    }
  } else if (size != 0) {
    // Shorter than a header: a crash during the very first create.
    if (::ftruncate(log->fd_, 0) < 0) {
      return Status::IOError("decision log truncate: " +
                             std::string(std::strerror(errno)));
    }
  }

  // Bump + persist the epoch before handing out any gtid: ids minted by
  // this incarnation can never collide with ids a dead incarnation
  // prepared on some participant but did not get to log.
  log->epoch_ = prior_epoch + 1;
  log->next_seq_ = 0;
  uint8_t header[kHeaderBytes];
  EncodeHeader(header, log->epoch_);
  HYRISE_NV_RETURN_NOT_OK(WriteAllAt(log->fd_, header, kHeaderBytes, 0));
  if (::fsync(log->fd_) < 0) {
    return Status::IOError("decision log fsync: " +
                           std::string(std::strerror(errno)));
  }
  HYRISE_NV_LOG(kInfo) << "decision log open: epoch " << log->epoch_
                       << ", " << log->committed_.size()
                       << " unretired commit decisions, "
                       << (valid_end - kHeaderBytes) / kRecordBytes
                       << " records";
  return log;
}

DecisionLog::~DecisionLog() {
  if (fd_ >= 0) ::close(fd_);
}

uint64_t DecisionLog::NextGtid() {
  std::lock_guard<std::mutex> guard(mutex_);
  return (epoch_ << 32) | ++next_seq_;
}

Status DecisionLog::AppendRecord(uint8_t type, uint64_t gtid, bool sync) {
  std::lock_guard<std::mutex> guard(mutex_);
  uint8_t rec[kRecordBytes];
  rec[0] = type;
  std::memcpy(rec + 1, &gtid, 8);
  const uint32_t crc = MaskCrc(Crc32c(rec, 9));
  std::memcpy(rec + 9, &crc, 4);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    return Status::IOError("decision log seek: " +
                           std::string(std::strerror(errno)));
  }
  HYRISE_NV_RETURN_NOT_OK(
      WriteAllAt(fd_, rec, kRecordBytes, static_cast<uint64_t>(end)));
  if (sync && ::fsync(fd_) < 0) {
    return Status::IOError("decision log fsync: " +
                           std::string(std::strerror(errno)));
  }
  switch (type) {
    case kRecCommit:
      committed_.insert(gtid);
      break;
    case kRecAbort:
      aborted_.insert(gtid);
      break;
    case kRecRetired:
      committed_.erase(gtid);
      aborted_.erase(gtid);
      break;
    default:
      break;
  }
  return Status::OK();
}

Status DecisionLog::LogCommit(uint64_t gtid) {
  return AppendRecord(kRecCommit, gtid, /*sync=*/true);
}

Status DecisionLog::LogAbort(uint64_t gtid) {
  return AppendRecord(kRecAbort, gtid, /*sync=*/false);
}

Status DecisionLog::LogRetired(uint64_t gtid) {
  return AppendRecord(kRecRetired, gtid, /*sync=*/false);
}

bool DecisionLog::KnownCommit(uint64_t gtid) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return committed_.count(gtid) > 0;
}

bool DecisionLog::KnownAbort(uint64_t gtid) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return aborted_.count(gtid) > 0;
}

size_t DecisionLog::live_commits() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return committed_.size();
}

}  // namespace hyrise_nv::cluster
