#ifndef HYRISE_NV_TXN_COMMIT_PIPELINE_H_
#define HYRISE_NV_TXN_COMMIT_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>

#include "common/status.h"
#include "storage/types.h"
#include "txn/commit_table.h"

namespace hyrise_nv::obs {
class BlackboxWriter;
}  // namespace hyrise_nv::obs

namespace hyrise_nv::txn {

/// Lock-free allocator over persisted, contiguous ID blocks.
///
/// The per-ID fast path is a single relaxed fetch_add; the claim callback
/// (which persists the next-block cursor on NVM) runs under a refill
/// mutex once per `block_size` IDs. Correctness rests on two properties
/// of the commit table's block cursors:
///
///  1. Blocks are contiguous within a process lifetime: each claim
///     returns exactly the previous claim's end, because only this
///     allocator draws from the persisted cursor. The cursor `next_` is
///     therefore never reset — a refill only *extends* `end_` — so no ID
///     is ever handed out twice, even with claimers racing the refill.
///  2. Across a crash the cursor resumes at a block boundary at or past
///     everything ever issued, so restart never reuses an ID (the gap to
///     the boundary is simply skipped).
///
/// IDs are issued densely and in monotonically increasing order, which is
/// what lets the OrderedPublisher below treat "the next CID to publish"
/// as a simple frontier counter.
class IdAllocator {
 public:
  /// Sentinel for `abandoned` below: no ID was abandoned.
  static constexpr uint64_t kNone = UINT64_MAX;

  explicit IdAllocator(uint64_t block_size) : block_size_(block_size) {}

  /// Allocates one ID. `claim` is `Result<uint64_t>()` returning the
  /// first ID of a freshly persisted block; it runs under the refill
  /// mutex. If a refill fails *after* this call consumed an ID from the
  /// monotone cursor, that ID is dead — it is reported through
  /// `abandoned` (when non-null) so the caller can retire it (the
  /// ordered publisher must not wait for a CID nobody will ever stamp).
  template <typename ClaimFn>
  Result<uint64_t> Alloc(ClaimFn&& claim, uint64_t* abandoned = nullptr) {
    if (abandoned != nullptr) *abandoned = kNone;
    if (!primed_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> guard(refill_mutex_);
      if (!primed_.load(std::memory_order_relaxed)) {
        auto first_result = claim();
        if (!first_result.ok()) return first_result.status();
        next_.store(*first_result, std::memory_order_relaxed);
        end_.store(*first_result + block_size_, std::memory_order_relaxed);
        // Release: a thread that observes primed_ == true also observes
        // the cursor pointing into the claimed block.
        primed_.store(true, std::memory_order_release);
      }
    }
    const uint64_t id = next_.fetch_add(1, std::memory_order_relaxed);
    if (id < end_.load(std::memory_order_acquire)) return id;
    std::lock_guard<std::mutex> guard(refill_mutex_);
    while (id >= end_.load(std::memory_order_relaxed)) {
      auto block_result = claim();
      if (!block_result.ok()) {
        if (abandoned != nullptr) *abandoned = id;
        return block_result.status();
      }
      HYRISE_NV_DCHECK(*block_result == end_.load(std::memory_order_relaxed),
                       "ID blocks must be contiguous within a process");
      end_.store(*block_result + block_size_, std::memory_order_release);
    }
    return id;
  }

 private:
  const uint64_t block_size_;
  std::atomic<bool> primed_{false};
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> end_{0};
  std::mutex refill_mutex_;
};

/// In-order commit publication over out-of-order stamping (DESIGN.md
/// §12). Committers persist their commit slots, run the durability hook,
/// and stamp rows fully in parallel; only the final visibility step — the
/// persisted watermark advance — is ordered. The publisher tracks a
/// frontier (the lowest issued-but-unpublished CID; CIDs are issued
/// densely by IdAllocator) and a pending map of commits that finished
/// stamping ahead of their predecessors:
///
///   - Publish(cid) enqueues a fully stamped commit. If `cid` is the
///     frontier, the caller drains the run of consecutive pending CIDs,
///     advances the watermark once to the highest stamped CID of the run
///     (a batched publish), and wakes the drained committers. Otherwise
///     it blocks until a predecessor drains past `cid`.
///   - Skip(cid) retires a CID whose commit failed before stamping
///     (hook error): the frontier may pass it, no watermark advance is
///     made on its behalf, and the caller never blocks.
///
/// Invariant: the watermark never advances past a CID that is not fully
/// stamped — a snapshot can therefore never observe half a commit.
/// Crash-safety is unchanged from the serial protocol: every unpublished
/// commit still holds a kCommitting slot, so recovery rolls the whole
/// tail forward in CID order and re-derives the same watermark.
class OrderedPublisher {
 public:
  /// Sets the initial frontier. Called once, from the first CID block
  /// claim, before any CID reaches Publish/Skip.
  void Prime(storage::Cid first_cid);
  bool primed() const;

  /// Enqueues a fully stamped commit and blocks until the watermark
  /// covers `cid`. Returns the nanoseconds spent waiting on (or
  /// draining) the queue.
  uint64_t Publish(storage::Cid cid, CommitTable& table,
                   obs::BlackboxWriter* bb);

  /// Retires an issued CID that will never be stamped. Never blocks
  /// beyond the drain itself.
  void Skip(storage::Cid cid, CommitTable& table, obs::BlackboxWriter* bb);

  /// Lowest issued-but-unpublished CID (diagnostics).
  storage::Cid frontier() const;

 private:
  /// Inserts (cid, stamped) and drains if `cid` is the frontier. Caller
  /// holds `lock`. Returns true when this call advanced the frontier.
  bool EnqueueLocked(storage::Cid cid, bool stamped, CommitTable& table,
                     obs::BlackboxWriter* bb);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  storage::Cid frontier_ = 0;  // 0 = unprimed (CID 0 is never issued)
  /// Commits that reached the publish stage out of order: CID → fully
  /// stamped (false = failed commit, retire without watermark advance).
  std::map<storage::Cid, bool> pending_;
};

}  // namespace hyrise_nv::txn

#endif  // HYRISE_NV_TXN_COMMIT_PIPELINE_H_
