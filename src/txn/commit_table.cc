#include "txn/commit_table.h"

#include <algorithm>
#include <cstring>

namespace hyrise_nv::txn {

Result<std::unique_ptr<CommitTable>> CommitTable::Format(
    alloc::PHeap& heap) {
  alloc::IntentHandle intent;
  auto off_result =
      heap.allocator().AllocWithIntent(sizeof(PTxnStateBlock), &intent);
  if (!off_result.ok()) return off_result.status();
  auto* block = heap.Resolve<PTxnStateBlock>(*off_result);
  std::memset(block, 0, sizeof(PTxnStateBlock));
  block->commit_watermark = 0;
  block->tid_block = 1;  // TID 0 is kTidNone
  block->cid_block = 1;  // CID 0 means "before everything"
  heap.region().Persist(block, sizeof(PTxnStateBlock));
  HYRISE_NV_RETURN_NOT_OK(heap.SetRoot(kTxnStateRootName, *off_result));
  heap.allocator().CommitIntent(intent);

  auto table = std::unique_ptr<CommitTable>(new CommitTable(heap));
  table->block_ = block;
  return table;
}

Result<std::unique_ptr<CommitTable>> CommitTable::Attach(
    alloc::PHeap& heap) {
  auto root_result = heap.GetRoot(kTxnStateRootName);
  if (!root_result.ok()) return root_result.status();
  auto table = std::unique_ptr<CommitTable>(new CommitTable(heap));
  table->block_ = heap.Resolve<PTxnStateBlock>(*root_result);
  if (table->block_->tid_block == 0 || table->block_->cid_block == 0) {
    return Status::Corruption("transaction state block corrupt");
  }
  // Crashed commits hold their slots until recovery rolls them forward
  // and releases them; don't hand those slots to new committers.
  for (uint64_t i = 0; i < kCommitSlots; ++i) {
    if (table->block_->slots[i].state != PCommitSlot::kFree) {
      table->claimed_ |= uint64_t{1} << i;
    }
  }
  return table;
}

void CommitTable::AdvanceWatermark(storage::Cid cid) {
  HYRISE_NV_DCHECK(cid >= block_->commit_watermark,
                   "watermark must be monotone");
  heap_->region().AtomicPersist64(&block_->commit_watermark, cid);
}

Result<storage::Tid> CommitTable::ClaimTidBlock() {
  std::lock_guard<std::mutex> guard(mutex_);
  const storage::Tid first = block_->tid_block;
  if (first + kTidBlockSize < first) {
    return Status::OutOfMemory("TID space exhausted");
  }
  heap_->region().AtomicPersist64(&block_->tid_block,
                                  first + kTidBlockSize);
  return first;
}

Result<storage::Cid> CommitTable::ClaimCidBlock() {
  std::lock_guard<std::mutex> guard(mutex_);
  const storage::Cid first = block_->cid_block;
  if (first + kTidBlockSize < first) {
    return Status::OutOfMemory("CID space exhausted");
  }
  heap_->region().AtomicPersist64(&block_->cid_block,
                                  first + kTidBlockSize);
  return first;
}

Result<PCommitSlot*> CommitTable::AcquireSlot(
    const std::vector<TouchEntry>& touches) {
  uint64_t idx = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    slot_cv_.wait(lock, [&] { return claimed_ != ~uint64_t{0}; });
    idx = static_cast<uint64_t>(__builtin_ctzll(~claimed_));
    claimed_ |= uint64_t{1} << idx;
  }
  PCommitSlot* slot = &block_->slots[idx];

  // Grow the slot's touch buffer if this commit needs more room. The
  // slot is kFree here, so the buffer swap is not recovery-visible; the
  // intent covers the new buffer until the slot references it. The
  // allocator is internally synchronised, so concurrent growers are fine.
  if (touches.size() > slot->touch_capacity) {
    const uint64_t new_capacity =
        std::max<uint64_t>(touches.size() * 2, 64);
    alloc::IntentHandle intent;
    auto off_result = heap_->allocator().AllocWithIntent(
        new_capacity * sizeof(TouchEntry), &intent);
    if (!off_result.ok()) {
      ReleaseSlot(slot);
      return off_result.status();
    }
    const uint64_t old_off = slot->touch_off;
    slot->touch_off = *off_result;
    slot->touch_capacity = new_capacity;
    heap_->region().Persist(slot, sizeof(PCommitSlot));
    heap_->allocator().CommitIntent(intent);
    if (old_off != 0) {
      (void)heap_->allocator().Free(old_off);
    }
  }

  // Persist the touch list + count while the slot is still invisible.
  if (!touches.empty()) {
    std::memcpy(heap_->region().base() + slot->touch_off, touches.data(),
                touches.size() * sizeof(TouchEntry));
    heap_->region().Persist(heap_->region().base() + slot->touch_off,
                            touches.size() * sizeof(TouchEntry));
  }
  slot->touch_count = touches.size();
  return slot;
}

void CommitTable::SealSlot(PCommitSlot* slot, storage::Cid cid) {
  // Touch list is already durable (AcquireSlot); persist the header with
  // the CID, then flip the state. Recovery sees all-or-nothing.
  slot->cid = cid;
  heap_->region().Persist(slot, sizeof(PCommitSlot));
  heap_->region().AtomicPersist64(&slot->state, PCommitSlot::kCommitting);
}

void CommitTable::SealSlotPrepared(PCommitSlot* slot, storage::Tid tid,
                                   uint64_t gtid) {
  // Same all-or-nothing discipline as SealSlot: the touch list is durable
  // already, so persist the header (tid + gtid, cid stays 0), then flip
  // the state last. A crash before the flip leaves the slot kFree and the
  // prepare never happened; after it, the transaction is in-doubt.
  slot->cid = 0;
  slot->tid = tid;
  slot->gtid = gtid;
  heap_->region().Persist(slot, sizeof(PCommitSlot));
  heap_->region().AtomicPersist64(&slot->state, PCommitSlot::kPrepared);
}

void CommitTable::ReleaseSlot(PCommitSlot* slot) {
  heap_->region().AtomicPersist64(&slot->state, PCommitSlot::kFree);
  const uint64_t idx = static_cast<uint64_t>(slot - block_->slots);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    claimed_ &= ~(uint64_t{1} << idx);
  }
  slot_cv_.notify_one();
}

Result<std::vector<CommitTable::InFlight>> CommitTable::FindInFlight() {
  std::vector<InFlight> result;
  for (auto& slot : block_->slots) {
    if (slot.state != PCommitSlot::kCommitting) continue;
    InFlight in_flight;
    in_flight.slot = &slot;
    in_flight.cid = slot.cid;
    if (slot.touch_count > 0) {
      if (slot.touch_off == 0 ||
          slot.touch_off + slot.touch_count * sizeof(TouchEntry) >
              heap_->region().size()) {
        return Status::Corruption("commit slot touch list out of range");
      }
      in_flight.touches.resize(slot.touch_count);
      std::memcpy(in_flight.touches.data(),
                  heap_->region().base() + slot.touch_off,
                  slot.touch_count * sizeof(TouchEntry));
    }
    result.push_back(std::move(in_flight));
  }
  return result;
}

Result<std::vector<CommitTable::Prepared>> CommitTable::FindPrepared() {
  std::vector<Prepared> result;
  for (auto& slot : block_->slots) {
    if (slot.state != PCommitSlot::kPrepared) continue;
    Prepared prepared;
    prepared.slot = &slot;
    prepared.tid = slot.tid;
    prepared.gtid = slot.gtid;
    if (slot.touch_count > 0) {
      if (slot.touch_off == 0 ||
          slot.touch_off + slot.touch_count * sizeof(TouchEntry) >
              heap_->region().size()) {
        return Status::Corruption("prepared slot touch list out of range");
      }
      prepared.touches.resize(slot.touch_count);
      std::memcpy(prepared.touches.data(),
                  heap_->region().base() + slot.touch_off,
                  slot.touch_count * sizeof(TouchEntry));
    }
    result.push_back(std::move(prepared));
  }
  return result;
}

}  // namespace hyrise_nv::txn
