#ifndef HYRISE_NV_TXN_TRANSACTION_H_
#define HYRISE_NV_TXN_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/table.h"
#include "storage/types.h"

namespace hyrise_nv::txn {

struct PCommitSlot;  // commit_table.h

/// One row touched by a transaction.
struct Write {
  storage::Table* table;
  storage::RowLocation loc;
  bool invalidate;  // false = inserted version, true = invalidated version
};

/// kPrepared is the two-phase-commit limbo: the write set is durably
/// sealed under a coordinator gtid, the transaction is no longer owned by
/// a session, and only a coordinator decision (or presumed abort) moves it
/// to kCommitted/kAborted.
enum class TxnState { kActive, kPrepared, kCommitted, kAborted };

/// Volatile per-transaction state. All durable effects live in the
/// tables' MVCC entries and the commit table; the context only tracks the
/// write set for commit stamping / abort rollback.
///
/// Shared between every Transaction handle for the same transaction and
/// the TxnManager's active registry — which is what lets the manager
/// abort transactions whose owners went away (a serving session whose
/// client died, or a Database::Close with work still open).
struct TxnContext {
  storage::Tid tid = storage::kTidNone;
  storage::Cid snapshot = 0;
  storage::Cid commit_cid = 0;
  TxnState state = TxnState::kActive;
  bool sampled = false;
  uint64_t begin_ticks = 0;
  /// Nanoseconds this commit spent in the ordered-publish queue waiting
  /// for predecessors (filled in by TxnManager::Commit; 0 when the
  /// commit drained its own batch without blocking).
  uint64_t commit_queue_wait_ns = 0;
  /// Commit-pipeline stage timings (filled in by TxnManager::Commit so
  /// the serving layer can attribute request latency without re-timing
  /// the engine): the durability hook (WAL append + group fsync) and the
  /// ordered publish. Zero for read-only commits and hook-less engines.
  uint64_t wal_sync_ns = 0;
  uint64_t commit_publish_ns = 0;
  /// Coordinator-issued global transaction id (kPrepared state only).
  uint64_t gtid = 0;
  /// The sealed commit slot held across the prepared window (NVM mode);
  /// decide-commit reuses it so a restart never sees a stale prepared
  /// slot for a decided transaction. Null for WAL-mode / log-adopted
  /// in-doubt transactions, which acquire a slot at decide time.
  PCommitSlot* prepared_slot = nullptr;
  std::vector<Write> writes;
};

/// Handle to a transaction. Copies alias the same TxnContext, so a
/// Transaction can be passed around by value while the TxnManager keeps
/// its own reference for forced aborts. A default-constructed handle is
/// inactive and safe to query (tid() == kTidNone, active() == false).
class Transaction {
 public:
  Transaction() = default;
  explicit Transaction(std::shared_ptr<TxnContext> ctx)
      : ctx_(std::move(ctx)) {}

  bool valid() const { return ctx_ != nullptr; }
  const std::shared_ptr<TxnContext>& context() const { return ctx_; }

  storage::Tid tid() const {
    return ctx_ ? ctx_->tid : storage::kTidNone;
  }
  storage::Cid snapshot() const { return ctx_ ? ctx_->snapshot : 0; }
  TxnState state() const {
    return ctx_ ? ctx_->state : TxnState::kAborted;
  }
  bool active() const { return ctx_ && ctx_->state == TxnState::kActive; }

  const std::vector<Write>& writes() const {
    static const std::vector<Write> kEmpty;
    return ctx_ ? ctx_->writes : kEmpty;
  }
  bool read_only() const { return writes().empty(); }

  void RecordInsert(storage::Table* table, storage::RowLocation loc) {
    ctx_->writes.push_back(Write{table, loc, false});
  }
  void RecordInvalidate(storage::Table* table, storage::RowLocation loc) {
    ctx_->writes.push_back(Write{table, loc, true});
  }

  /// Set by the transaction manager on commit/abort.
  void set_state(TxnState state) { ctx_->state = state; }
  void set_commit_cid(storage::Cid cid) { ctx_->commit_cid = cid; }
  storage::Cid commit_cid() const { return ctx_ ? ctx_->commit_cid : 0; }
  void set_commit_queue_wait_ns(uint64_t ns) {
    ctx_->commit_queue_wait_ns = ns;
  }
  uint64_t commit_queue_wait_ns() const {
    return ctx_ ? ctx_->commit_queue_wait_ns : 0;
  }
  void set_wal_sync_ns(uint64_t ns) { ctx_->wal_sync_ns = ns; }
  uint64_t wal_sync_ns() const { return ctx_ ? ctx_->wal_sync_ns : 0; }
  void set_commit_publish_ns(uint64_t ns) { ctx_->commit_publish_ns = ns; }
  uint64_t commit_publish_ns() const {
    return ctx_ ? ctx_->commit_publish_ns : 0;
  }

  /// Marks this transaction as trace-sampled: the manager records a span
  /// tree of its commit phases (begin→write-set→persist→publish).
  void MarkSampled(uint64_t begin_ticks) {
    ctx_->sampled = true;
    ctx_->begin_ticks = begin_ticks;
  }
  bool sampled() const { return ctx_ && ctx_->sampled; }
  uint64_t begin_ticks() const { return ctx_ ? ctx_->begin_ticks : 0; }

 private:
  std::shared_ptr<TxnContext> ctx_;
};

}  // namespace hyrise_nv::txn

#endif  // HYRISE_NV_TXN_TRANSACTION_H_
