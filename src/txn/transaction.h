#ifndef HYRISE_NV_TXN_TRANSACTION_H_
#define HYRISE_NV_TXN_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"
#include "storage/types.h"

namespace hyrise_nv::txn {

/// One row touched by a transaction.
struct Write {
  storage::Table* table;
  storage::RowLocation loc;
  bool invalidate;  // false = inserted version, true = invalidated version
};

enum class TxnState { kActive, kCommitted, kAborted };

/// Volatile per-transaction context. All durable effects live in the
/// tables' MVCC entries and the commit table; the context only tracks the
/// write set for commit stamping / abort rollback.
class Transaction {
 public:
  Transaction() = default;
  Transaction(storage::Tid tid, storage::Cid snapshot)
      : tid_(tid), snapshot_(snapshot) {}

  storage::Tid tid() const { return tid_; }
  storage::Cid snapshot() const { return snapshot_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  const std::vector<Write>& writes() const { return writes_; }
  bool read_only() const { return writes_.empty(); }

  void RecordInsert(storage::Table* table, storage::RowLocation loc) {
    writes_.push_back(Write{table, loc, false});
  }
  void RecordInvalidate(storage::Table* table, storage::RowLocation loc) {
    writes_.push_back(Write{table, loc, true});
  }

  /// Set by the transaction manager on commit/abort.
  void set_state(TxnState state) { state_ = state; }
  void set_commit_cid(storage::Cid cid) { commit_cid_ = cid; }
  storage::Cid commit_cid() const { return commit_cid_; }

  /// Marks this transaction as trace-sampled: the manager records a span
  /// tree of its commit phases (begin→write-set→persist→publish).
  void MarkSampled(uint64_t begin_ticks) {
    sampled_ = true;
    begin_ticks_ = begin_ticks;
  }
  bool sampled() const { return sampled_; }
  uint64_t begin_ticks() const { return begin_ticks_; }

 private:
  storage::Tid tid_ = storage::kTidNone;
  storage::Cid snapshot_ = 0;
  storage::Cid commit_cid_ = 0;
  TxnState state_ = TxnState::kActive;
  bool sampled_ = false;
  uint64_t begin_ticks_ = 0;
  std::vector<Write> writes_;
};

}  // namespace hyrise_nv::txn

#endif  // HYRISE_NV_TXN_TRANSACTION_H_
