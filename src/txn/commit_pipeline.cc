#include "txn/commit_pipeline.h"

#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv::txn {

void OrderedPublisher::Prime(storage::Cid first_cid) {
  std::lock_guard<std::mutex> guard(mu_);
  HYRISE_NV_DCHECK(frontier_ == 0, "publisher primed twice");
  HYRISE_NV_DCHECK(first_cid != 0, "CID 0 is never issued");
  frontier_ = first_cid;
}

bool OrderedPublisher::primed() const {
  std::lock_guard<std::mutex> guard(mu_);
  return frontier_ != 0;
}

storage::Cid OrderedPublisher::frontier() const {
  std::lock_guard<std::mutex> guard(mu_);
  return frontier_;
}

bool OrderedPublisher::EnqueueLocked(storage::Cid cid, bool stamped,
                                     CommitTable& table,
                                     obs::BlackboxWriter* bb) {
  HYRISE_NV_DCHECK(frontier_ != 0, "publisher not primed");
  HYRISE_NV_DCHECK(cid >= frontier_, "CID published twice");
  pending_.emplace(cid, stamped);
  if (cid != frontier_) return false;

  // This commit is the frontier: drain the run of consecutive CIDs that
  // already reached the publish stage, advance the watermark once to the
  // highest *stamped* CID of the run (skipped CIDs are retired without a
  // watermark step — nothing was stamped with them), and wake everyone
  // who was waiting inside the run.
  storage::Cid last_stamped = 0;
  uint64_t published = 0;
  uint64_t skipped = 0;
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == frontier_) {
    if (it->second) {
      last_stamped = it->first;
      ++published;
    } else {
      ++skipped;
    }
    ++frontier_;
    it = pending_.erase(it);
  }
  if (last_stamped != 0) {
    // The single ordered persist of the pipeline. Batching it over the
    // whole run is what amortises the publish cost under load.
    table.AdvanceWatermark(last_stamped);
  }
#if HYRISE_NV_METRICS_ENABLED
  if (published > 0) {
    static obs::Histogram& group_size =
        obs::MetricsRegistry::Instance().GetHistogram(
            "txn.commit.group_size");
    group_size.Record(published);
    if (bb != nullptr) {
      bb->Record(obs::BlackboxEventType::kTxnPublishBatch, published,
                 last_stamped, skipped);
    }
  }
#else
  (void)bb;
#endif
  cv_.notify_all();
  return true;
}

uint64_t OrderedPublisher::Publish(storage::Cid cid, CommitTable& table,
                                   obs::BlackboxWriter* bb) {
#if HYRISE_NV_METRICS_ENABLED
  const uint64_t start_ticks = obs::FastClock::NowTicks();
#endif
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!EnqueueLocked(cid, /*stamped=*/true, table, bb)) {
      // A predecessor is still stamping; its drain will cover us. Block
      // until then — Commit() must not return before the commit is
      // visible (read-your-writes).
      cv_.wait(lock, [&] { return frontier_ > cid; });
    }
  }
#if HYRISE_NV_METRICS_ENABLED
  const uint64_t wait_ns = obs::FastClock::TicksToNanos(
      static_cast<int64_t>(obs::FastClock::NowTicks() - start_ticks));
  static obs::Histogram& queue_wait =
      obs::MetricsRegistry::Instance().GetHistogram(
          "txn.commit.queue_wait_ns");
  queue_wait.Record(wait_ns);
  return wait_ns;
#else
  return 0;
#endif
}

void OrderedPublisher::Skip(storage::Cid cid, CommitTable& table,
                            obs::BlackboxWriter* bb) {
  std::lock_guard<std::mutex> guard(mu_);
  EnqueueLocked(cid, /*stamped=*/false, table, bb);
}

}  // namespace hyrise_nv::txn
