#ifndef HYRISE_NV_TXN_COMMIT_TABLE_H_
#define HYRISE_NV_TXN_COMMIT_TABLE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "alloc/pheap.h"
#include "common/status.h"
#include "storage/types.h"

namespace hyrise_nv::txn {

/// Region root name of the persistent transaction state.
inline constexpr const char* kTxnStateRootName = "txn_state";

/// Number of commit slots (bounds concurrently *committing* transactions;
/// active transactions are unbounded).
constexpr uint64_t kCommitSlots = 64;

/// TIDs are claimed in persisted blocks of this size, so after a restart
/// the next block is untouched territory — no TID is ever reused and no
/// scan is needed. (One ingredient of O(1) recovery.)
constexpr uint64_t kTidBlockSize = 4096;

/// One persisted row touch of a committing transaction. Recovery rolls a
/// crashed commit *forward* from these (idempotent re-stamping).
struct TouchEntry {
  static constexpr uint64_t kInMainBit = uint64_t{1} << 63;
  static constexpr uint64_t kInvalidateBit = uint64_t{1} << 62;

  uint64_t table_id;
  uint64_t row_and_flags;

  static TouchEntry Make(uint64_t table_id, storage::RowLocation loc,
                         bool invalidate) {
    TouchEntry e;
    e.table_id = table_id;
    e.row_and_flags = loc.row | (loc.in_main ? kInMainBit : 0) |
                      (invalidate ? kInvalidateBit : 0);
    return e;
  }
  storage::RowLocation location() const {
    return {(row_and_flags & kInMainBit) != 0,
            row_and_flags & ~(kInMainBit | kInvalidateBit)};
  }
  bool invalidate() const { return (row_and_flags & kInvalidateBit) != 0; }
};

/// One on-NVM commit slot. `state` flips to kCommitting only after cid
/// and the touch list are durable; recovery completes any slot found in
/// that state. kPrepared is the two-phase-commit variant: the touch list
/// and gtid are durable but no CID exists yet — recovery neither rolls the
/// slot forward nor releases it; the transaction stays in-doubt until the
/// coordinator's decision (or presumed abort) arrives. The touch buffer is
/// owned by the slot and reused across commits (grown on demand), so the
/// commit path allocates nothing.
struct PCommitSlot {
  static constexpr uint64_t kFree = 0;
  static constexpr uint64_t kCommitting = 1;
  static constexpr uint64_t kPrepared = 2;

  uint64_t state;
  uint64_t cid;
  uint64_t touch_off;       // payload offset of the TouchEntry buffer
  uint64_t touch_count;     // entries of the current commit
  uint64_t touch_capacity;  // buffer capacity in entries
  uint64_t tid;             // owning TID (kPrepared slots; 0 otherwise)
  uint64_t gtid;            // coordinator's global txn id (kPrepared slots)
};

/// The on-NVM transaction state block (root "txn_state").
struct PTxnStateBlock {
  uint64_t commit_watermark;  // highest fully committed CID
  uint64_t tid_block;         // first TID of the next unclaimed block
  uint64_t cid_block;         // first CID of the next unclaimed block
  PCommitSlot slots[kCommitSlots];
  /// Seal tag over the fields above, written at clean shutdown
  /// (recovery/verify.h). 0 = unsealed.
  uint64_t block_crc;
};

/// Volatile handle over PTxnStateBlock: watermark, TID/CID block
/// allocation, commit slots, and enumeration of in-flight commits for
/// recovery.
///
/// Concurrency: slots are claimed through a volatile bitmask so multiple
/// committers hold distinct slots at once. The slot lifecycle is split in
/// three so only acquisition synchronises:
///
///   AcquireSlot(touches)  — blocks until a slot is free, claims it, and
///                           persists the touch list while the slot is
///                           still kFree (not yet recovery-visible);
///   SealSlot(slot, cid)   — lock-free (the caller owns the slot):
///                           persists the CID, then atomically flips the
///                           state to kCommitting. Durability point.
///   ReleaseSlot(slot)     — flips back to kFree and wakes one waiter.
class CommitTable {
 public:
  /// Allocates and formats the state block; registers the root.
  static Result<std::unique_ptr<CommitTable>> Format(alloc::PHeap& heap);

  /// Binds to an existing state block. Slots found in kCommitting state
  /// (crashed commits) start out claimed; recovery releases them.
  static Result<std::unique_ptr<CommitTable>> Attach(alloc::PHeap& heap);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(CommitTable);

  storage::Cid watermark() const { return block_->commit_watermark; }

  /// Publishes `cid` as fully committed (single atomic persist). Callers
  /// must externally order their advances (OrderedPublisher / recovery).
  void AdvanceWatermark(storage::Cid cid);

  /// Claims a fresh block of TIDs; returns its first TID. Persisted, so
  /// the block is never handed out again, even across crashes.
  Result<storage::Tid> ClaimTidBlock();

  /// Claims a fresh block of CIDs (same non-reuse guarantee). Commit CIDs
  /// are drawn from claimed blocks so stamps written by a crashed commit
  /// can never collide with CIDs issued after restart.
  Result<storage::Cid> ClaimCidBlock();

  /// Claims a free commit slot — blocking until one is available if all
  /// kCommitSlots are held — and persists the touch list into it. The
  /// slot stays kFree (invisible to recovery) until SealSlot.
  Result<PCommitSlot*> AcquireSlot(const std::vector<TouchEntry>& touches);

  /// Persists `cid` into the slot and flips it to kCommitting (in that
  /// persist order). After this returns the commit survives a crash.
  /// Lock-free: the slot is owned by the calling committer. Also the
  /// decide-commit step for a kPrepared slot (kPrepared → kCommitting).
  void SealSlot(PCommitSlot* slot, storage::Cid cid);

  /// Persists the owning tid + coordinator gtid into the slot and flips
  /// it to kPrepared (2PC prepare durability point on NVM). The slot then
  /// survives crashes as an in-doubt transaction until SealSlot (decide
  /// commit) or ReleaseSlot (decide abort).
  void SealSlotPrepared(PCommitSlot* slot, storage::Tid tid, uint64_t gtid);

  /// Returns the slot to the free pool (after publish, or on a failed
  /// commit) and wakes one AcquireSlot waiter.
  void ReleaseSlot(PCommitSlot* slot);

  /// In-flight commit found on NVM after a crash.
  struct InFlight {
    PCommitSlot* slot;
    storage::Cid cid;
    std::vector<TouchEntry> touches;
  };

  /// All slots in kCommitting state (recovery input).
  Result<std::vector<InFlight>> FindInFlight();

  /// Prepared-but-undecided transaction found on NVM after a restart.
  struct Prepared {
    PCommitSlot* slot;
    storage::Tid tid;
    uint64_t gtid;
    std::vector<TouchEntry> touches;
  };

  /// All slots in kPrepared state (in-doubt recovery input). Attach
  /// already marked them claimed, so decide-commit reuses the original
  /// slot rather than acquiring a fresh one.
  Result<std::vector<Prepared>> FindPrepared();

  PTxnStateBlock* block() { return block_; }

 private:
  explicit CommitTable(alloc::PHeap& heap) : heap_(&heap) {}

  alloc::PHeap* heap_;
  PTxnStateBlock* block_ = nullptr;
  std::mutex mutex_;
  std::condition_variable slot_cv_;
  /// Volatile claim bitmask over block_->slots (bit i = slot i held by a
  /// live committer). Guarded by mutex_. Superset of the kCommitting
  /// slots; rebuilt from slot states at Attach.
  uint64_t claimed_ = 0;
};

}  // namespace hyrise_nv::txn

#endif  // HYRISE_NV_TXN_COMMIT_TABLE_H_
