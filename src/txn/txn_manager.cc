#include "txn/txn_manager.h"

#include <unordered_map>

#include "common/logging.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "storage/mvcc.h"

namespace hyrise_nv::txn {

TxnManager::TxnManager(alloc::PHeap& heap,
                       std::unique_ptr<CommitTable> commit_table)
    : heap_(&heap), commit_table_(std::move(commit_table)) {}

Result<std::unique_ptr<TxnManager>> TxnManager::Format(alloc::PHeap& heap) {
  auto table_result = CommitTable::Format(heap);
  if (!table_result.ok()) return table_result.status();
  return std::make_unique<TxnManager>(heap,
                                      std::move(table_result).ValueUnsafe());
}

Result<std::unique_ptr<TxnManager>> TxnManager::Attach(alloc::PHeap& heap) {
  auto table_result = CommitTable::Attach(heap);
  if (!table_result.ok()) return table_result.status();
  return std::make_unique<TxnManager>(heap,
                                      std::move(table_result).ValueUnsafe());
}

Result<Transaction> TxnManager::Begin() {
  auto tid_result =
      tid_alloc_.Alloc([this] { return commit_table_->ClaimTidBlock(); });
  if (!tid_result.ok()) return tid_result.status();
  const storage::Tid tid = *tid_result;
  auto ctx = std::make_shared<TxnContext>();
  ctx->tid = tid;
  ctx->snapshot = commit_table_->watermark();
  active_.Insert(tid, ctx);
  Transaction tx(std::move(ctx));
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& begin_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.begin.count");
  begin_count.Inc();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kTxnBegin, tid, tx.snapshot());
  }
  const uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every != 0 &&
      sample_counter_.fetch_add(1, std::memory_order_relaxed) % every ==
          0) {
    tx.MarkSampled(obs::FastClock::NowTicks());
  }
#endif
  return tx;
}

bool TxnManager::IsActive(storage::Tid tid) const {
  if (active_.Contains(tid)) return true;
  std::lock_guard<std::mutex> guard(prepared_mutex_);
  return prepared_tids_.count(tid) > 0;
}

size_t TxnManager::ActiveCount() const { return active_.Count(); }

size_t TxnManager::PreparedCount() const {
  std::lock_guard<std::mutex> guard(prepared_mutex_);
  return prepared_.size();
}

std::vector<uint64_t> TxnManager::InDoubtGtids() const {
  std::lock_guard<std::mutex> guard(prepared_mutex_);
  std::vector<uint64_t> gtids;
  gtids.reserve(prepared_.size());
  for (const auto& [gtid, ctx] : prepared_) gtids.push_back(gtid);
  return gtids;
}

size_t TxnManager::AbortAllActive() {
  size_t aborted = 0;
  while (true) {
    std::shared_ptr<TxnContext> ctx = active_.PeekAny();
    if (ctx == nullptr) break;
    Transaction tx(ctx);
    Status status = Abort(tx);
    if (status.ok()) {
      ++aborted;
      continue;
    }
    HYRISE_NV_LOG(kWarn) << "forced abort of tid " << ctx->tid
                         << " failed: " << status.ToString();
    // Guarantee progress: drop the registry entry even when the abort
    // path failed, or this loop would spin on the same transaction.
    active_.Erase(ctx->tid);
  }
  if (aborted > 0) {
    HYRISE_NV_LOG(kInfo) << "force-aborted " << aborted
                         << " still-active transaction(s)";
  }
  return aborted;
}

void TxnManager::StampWrites(const std::vector<Write>& writes,
                             storage::Cid cid) {
  // CLWB batching: flush every stamped entry, then a single fence. The
  // ordered publish (the caller's next step) is what makes the commit
  // visible, so intra-batch ordering is irrelevant — only "all stamps
  // before the watermark covers cid" matters, which the fence plus the
  // publish queue guarantee.
  auto& region = heap_->region();
  for (const Write& write : writes) {
    storage::MvccEntry* entry = write.table->mvcc(write.loc);
    if (write.invalidate) {
      __atomic_store_n(&entry->end, cid, __ATOMIC_RELEASE);
    } else {
      __atomic_store_n(&entry->begin, cid, __ATOMIC_RELEASE);
    }
    __atomic_store_n(&entry->tid, storage::kTidNone, __ATOMIC_RELEASE);
    region.Flush(entry, sizeof(*entry));
  }
  region.Fence();
}

Result<storage::Cid> TxnManager::AllocCid() {
  uint64_t abandoned = IdAllocator::kNone;
  auto cid_result = cid_alloc_.Alloc(
      [this]() -> Result<uint64_t> {
        auto block_result = commit_table_->ClaimCidBlock();
        if (block_result.ok() && !publisher_.primed()) {
          // First block of this process: the lowest CID we will ever
          // issue is the publisher's initial frontier.
          publisher_.Prime(*block_result);
        }
        return block_result;
      },
      &abandoned);
  if (!cid_result.ok() && abandoned != IdAllocator::kNone) {
    // The failed refill consumed a CID nobody will ever stamp; retire it
    // so the dense publish queue doesn't wait for it forever.
    publisher_.Skip(abandoned, *commit_table_, heap_->blackbox());
  }
  return cid_result;
}

Status TxnManager::Commit(Transaction& tx) {
  if (!tx.active()) {
    return Status::InvalidArgument("commit of non-active transaction");
  }
#if HYRISE_NV_METRICS_ENABLED
  const uint64_t commit_start_ticks = obs::FastClock::NowTicks();
  const bool sampled = tx.sampled();
  uint64_t write_set_end_ticks = 0;  // after the commit-slot seal
  uint64_t persist_end_ticks = 0;    // after hook + row stamping
  static obs::Counter& commit_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.commit.count");
#endif
  if (tx.read_only()) {
    tx.set_state(TxnState::kCommitted);
    active_.Erase(tx.tid());
#if HYRISE_NV_METRICS_ENABLED
    // Read-only commits skip the durable pipeline but still count: a
    // served read workload must show up in txn.commit.count and the
    // flight recorder (cid 0 = nothing published).
    commit_count.Inc();
    static obs::Counter& read_only_count =
        obs::MetricsRegistry::Instance().GetCounter(
            "txn.commit.read_only");
    read_only_count.Inc();
    if (obs::BlackboxWriter* bb = heap_->blackbox()) {
      bb->Record(obs::BlackboxEventType::kTxnCommit, tx.tid(), 0, 0, 0);
    }
#endif
    return Status::OK();
  }

  // Stage 1 — acquire a commit slot (may block when all kCommitSlots are
  // held). Ordering note: the slot is acquired *before* the CID so that
  // every issued CID is backed by a slot-holding committer that can make
  // progress; the reverse order can deadlock (64 slot holders blocked in
  // the publish queue on a predecessor CID whose owner is still waiting
  // for a slot).
  std::vector<TouchEntry> touches;
  touches.reserve(tx.writes().size());
  for (const Write& write : tx.writes()) {
    touches.push_back(TouchEntry::Make(write.table->id(), write.loc,
                                       write.invalidate));
  }
  auto slot_result = commit_table_->AcquireSlot(touches);
  if (!slot_result.ok()) return slot_result.status();
  PCommitSlot* slot = *slot_result;

  // Stage 2 — draw the CID (lock-free fast path).
  auto cid_result = AllocCid();
  if (!cid_result.ok()) {
    commit_table_->ReleaseSlot(slot);
    return cid_result.status();
  }
  const storage::Cid cid = *cid_result;

  // Stage 3 — seal the slot: persist the CID and flip to kCommitting.
  // Durability point; from here a crash rolls this commit forward.
  commit_table_->SealSlot(slot, cid);
#if HYRISE_NV_METRICS_ENABLED
  if (sampled) write_set_end_ticks = obs::FastClock::NowTicks();
#endif

  // Stage 4 — secondary durability hook (WAL engines append their commit
  // record and join a group fsync here, before any stamp is visible).
  if (hook_ != nullptr) {
#if HYRISE_NV_METRICS_ENABLED
    const uint64_t hook_start_ticks = obs::FastClock::NowTicks();
#endif
    Status hook_status = hook_->OnCommit(cid, tx);
#if HYRISE_NV_METRICS_ENABLED
    tx.set_wal_sync_ns(obs::FastClock::TicksToNanos(static_cast<int64_t>(
        obs::FastClock::NowTicks() - hook_start_ticks)));
#endif
    if (!hook_status.ok()) {
      // Free the slot *before* retiring the CID: once the publish queue
      // passes `cid` the watermark may advance over it, and a slot still
      // in kCommitting state at a crash would roll this failed commit
      // forward.
      commit_table_->ReleaseSlot(slot);
      publisher_.Skip(cid, *commit_table_, heap_->blackbox());
      return hook_status;
    }
  }

  // Stage 5 — stamp all rows (runs fully in parallel with other
  // committers; stamps are per-row atomic releases).
  StampWrites(tx.writes(), cid);
#if HYRISE_NV_METRICS_ENABLED
  if (sampled) persist_end_ticks = obs::FastClock::NowTicks();
#endif

  // Stage 6 — ordered publish: the watermark advances strictly in CID
  // order, batched over runs of finished commits. Blocks until the
  // watermark covers `cid` (read-your-writes).
#if HYRISE_NV_METRICS_ENABLED
  const uint64_t publish_start_ticks = obs::FastClock::NowTicks();
#endif
  const uint64_t queue_wait_ns =
      publisher_.Publish(cid, *commit_table_, heap_->blackbox());
  tx.set_commit_queue_wait_ns(queue_wait_ns);
#if HYRISE_NV_METRICS_ENABLED
  tx.set_commit_publish_ns(obs::FastClock::TicksToNanos(static_cast<int64_t>(
      obs::FastClock::NowTicks() - publish_start_ticks)));
#endif

  // Stage 7 — release the slot and retire the transaction.
  commit_table_->ReleaseSlot(slot);
  tx.set_commit_cid(cid);
  tx.set_state(TxnState::kCommitted);
  active_.Erase(tx.tid());
#if HYRISE_NV_METRICS_ENABLED
  // Covers the full durable-commit path: slot acquisition, CID
  // allocation, commit-slot persist, the WAL hook (append + group sync),
  // row stamping, and the ordered publish — the engine-side tail latency
  // a client observes.
  static obs::Histogram& commit_latency =
      obs::MetricsRegistry::Instance().GetHistogram("txn.commit.latency_ns");
  const uint64_t commit_end_ticks = obs::FastClock::NowTicks();
  const uint64_t latency_ns = obs::FastClock::TicksToNanos(
      static_cast<int64_t>(commit_end_ticks - commit_start_ticks));
  commit_latency.Record(latency_ns);
  commit_count.Inc();
  obs::BlackboxWriter* bb = heap_->blackbox();
  if (bb != nullptr) {
    bb->Record(obs::BlackboxEventType::kTxnCommit, tx.tid(), cid,
               tx.writes().size(), latency_ns);
  }
  if (sampled) {
    RecordSampledTrace(tx, write_set_end_ticks, persist_end_ticks,
                       commit_end_ticks, bb);
  }
#endif
  return Status::OK();
}

void TxnManager::RecordSampledTrace(const Transaction& tx,
                                    uint64_t write_set_end,
                                    uint64_t persist_end,
                                    uint64_t commit_end,
                                    obs::BlackboxWriter* bb) {
#if HYRISE_NV_METRICS_ENABLED
  using obs::FastClock;
  // Phase spans of the commit pipeline: begin→write-set (slot acquire +
  // CID alloc + touch-list/commit-slot persist), persist (WAL hook + row
  // stamping), commit-publish (ordered publish + slot release) with its
  // queue-wait portion as a child span. Total runs from Begin().
  const uint64_t begin = tx.begin_ticks();
  const uint64_t total_ns = FastClock::TicksToNanos(
      static_cast<int64_t>(commit_end - begin));
  const uint64_t write_set_ns = FastClock::TicksToNanos(
      static_cast<int64_t>(write_set_end - begin));
  const uint64_t persist_ns = FastClock::TicksToNanos(
      static_cast<int64_t>(persist_end - write_set_end));
  const uint64_t publish_ns = FastClock::TicksToNanos(
      static_cast<int64_t>(commit_end - persist_end));
  const uint64_t queue_wait_ns = tx.commit_queue_wait_ns();

  static obs::Histogram& h_write_set =
      obs::MetricsRegistry::Instance().GetHistogram(
          "txn.trace.write_set_ns");
  static obs::Histogram& h_persist =
      obs::MetricsRegistry::Instance().GetHistogram("txn.trace.persist_ns");
  static obs::Histogram& h_publish =
      obs::MetricsRegistry::Instance().GetHistogram("txn.trace.publish_ns");
  static obs::Histogram& h_total =
      obs::MetricsRegistry::Instance().GetHistogram("txn.trace.total_ns");
  h_write_set.Record(write_set_ns);
  h_persist.Record(persist_ns);
  h_publish.Record(publish_ns);
  h_total.Record(total_ns);

  if (bb != nullptr) {
    bb->Record(obs::BlackboxEventType::kTxnTrace, tx.tid(), write_set_ns,
               persist_ns, publish_ns, total_ns);
  }

  obs::SpanNode trace;
  trace.name = "txn_commit";
  trace.seconds = static_cast<double>(total_ns) / 1e9;
  obs::SpanNode child;
  child.name = "write_set";
  child.seconds = static_cast<double>(write_set_ns) / 1e9;
  trace.children.push_back(child);
  child.name = "persist";
  child.seconds = static_cast<double>(persist_ns) / 1e9;
  // The WAL hook (append + group fsync) dominates persist for log-based
  // engines; breaking it out lets a wire→txn→WAL trace blame the fsync.
  obs::SpanNode wal_child;
  wal_child.name = "wal_sync";
  wal_child.seconds = static_cast<double>(tx.wal_sync_ns()) / 1e9;
  child.children.push_back(std::move(wal_child));
  trace.children.push_back(child);
  child.children.clear();
  child.name = "commit_publish";
  child.seconds = static_cast<double>(publish_ns) / 1e9;
  obs::SpanNode queue_child;
  queue_child.name = "queue_wait";
  queue_child.seconds = static_cast<double>(queue_wait_ns) / 1e9;
  child.children.push_back(std::move(queue_child));
  trace.children.push_back(std::move(child));
  std::lock_guard<std::mutex> guard(trace_mutex_);
  last_trace_ = std::move(trace);
#else
  (void)tx;
  (void)write_set_end;
  (void)persist_end;
  (void)commit_end;
  (void)bb;
#endif
}

obs::SpanNode TxnManager::LastSampledTrace() const {
  std::lock_guard<std::mutex> guard(trace_mutex_);
  return last_trace_;
}

Status TxnManager::Abort(Transaction& tx) {
  if (!tx.active()) {
    return Status::InvalidArgument("abort of non-active transaction");
  }
  auto& region = heap_->region();
  for (const Write& write : tx.writes()) {
    storage::MvccEntry* entry = write.table->mvcc(write.loc);
    if (write.invalidate) {
      // Release the delete claim; any self-delete marker on an own insert
      // stays (the insert itself is dropped below).
      if (entry->begin != storage::kCidInfinity) {
        storage::ReleaseClaim(region, entry, tx.tid());
      }
    } else {
      // Own insert: stays begin = ∞ forever (invisible garbage retired at
      // merge); release the tid so nothing mistakes it for in-flight.
      region.AtomicPersist64(&entry->tid, storage::kTidNone);
    }
  }
  if (hook_ != nullptr) {
    HYRISE_NV_RETURN_NOT_OK(hook_->OnAbort(tx));
  }
  tx.set_state(TxnState::kAborted);
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& abort_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.abort.count");
  abort_count.Inc();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kTxnAbort, tx.tid(),
               tx.writes().size());
  }
#endif
  active_.Erase(tx.tid());
  return Status::OK();
}

Status TxnManager::Prepare(Transaction& tx, uint64_t gtid) {
  if (!tx.active()) {
    return Status::InvalidArgument("prepare of non-active transaction");
  }
  {
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    if (prepared_.count(gtid) > 0) {
      return Status::AlreadyExists("gtid " + std::to_string(gtid) +
                                   " already prepared");
    }
  }

  PCommitSlot* slot = nullptr;
  if (!tx.read_only()) {
    // Same slot-before-seal discipline as Commit stages 1+3, but the seal
    // carries (tid, gtid) instead of a CID: the durability point of the
    // prepare vote. No CID exists yet — visibility stays untouched.
    std::vector<TouchEntry> touches;
    touches.reserve(tx.writes().size());
    for (const Write& write : tx.writes()) {
      touches.push_back(TouchEntry::Make(write.table->id(), write.loc,
                                         write.invalidate));
    }
    auto slot_result = commit_table_->AcquireSlot(touches);
    if (!slot_result.ok()) return slot_result.status();
    slot = *slot_result;
    commit_table_->SealSlotPrepared(slot, tx.tid(), gtid);

    if (hook_ != nullptr) {
      Status hook_status = hook_->OnPrepare(gtid, tx);
      if (!hook_status.ok()) {
        // Unwind: the slot goes back to kFree, the transaction stays
        // active, and the caller aborts it (a half-written WAL prepare
        // record without a decide resolves to presumed abort on replay).
        commit_table_->ReleaseSlot(slot);
        return hook_status;
      }
    }
  }

  // Register as prepared *before* leaving the active registry so IsActive
  // never has a gap — a gap would let a concurrent writer steal this
  // transaction's row claims mid-handoff.
  std::shared_ptr<TxnContext> ctx = tx.context();
  ctx->gtid = gtid;
  ctx->prepared_slot = slot;
  {
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    prepared_.emplace(gtid, ctx);
    prepared_tids_.emplace(ctx->tid, gtid);
  }
  tx.set_state(TxnState::kPrepared);
  active_.Erase(ctx->tid);
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& prepare_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.prepare.count");
  prepare_count.Inc();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kTxnPrepare, ctx->tid, gtid,
               ctx->writes.size());
  }
#endif
  return Status::OK();
}

Status TxnManager::Decide(uint64_t gtid, bool commit) {
  std::shared_ptr<TxnContext> ctx;
  {
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    auto it = prepared_.find(gtid);
    if (it == prepared_.end()) {
      // Unknown gtid: already decided here (possibly by a concurrent
      // retry that still holds the ctx) or never prepared. Either way OK
      // — the coordinator never flips a logged decision, so answering
      // success to a duplicate or stale decide is always safe.
      return Status::OK();
    }
    ctx = it->second;
    prepared_.erase(it);  // this call owns the decision now
  }
  Transaction tx(ctx);
  Status status = commit ? DecideCommit(tx) : DecideAbort(tx);
  if (!status.ok()) {
    // Put it back so a coordinator retry can try again.
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    prepared_.emplace(gtid, ctx);
    return status;
  }
  {
    // Drop the TID only after all effects landed (claims must look live
    // until stamped/released), and remember the gtid in the retired ring.
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    prepared_tids_.erase(ctx->tid);
    if (retired_gtids_.size() < kRetiredGtidRing) {
      retired_gtids_.push_back(gtid);
    } else {
      retired_gtids_[retired_cursor_] = gtid;
      retired_cursor_ = (retired_cursor_ + 1) % kRetiredGtidRing;
    }
  }
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& decide_commit_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.decide.commit");
  static obs::Counter& decide_abort_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.decide.abort");
  (commit ? decide_commit_count : decide_abort_count).Inc();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kTxnDecide, gtid, commit ? 1 : 0,
               ctx->commit_cid);
  }
#endif
  return Status::OK();
}

Status TxnManager::DecideCommit(Transaction& tx) {
  if (tx.read_only()) {
    tx.set_state(TxnState::kCommitted);
    return Status::OK();
  }
  // A live-prepared or NVM-adopted transaction still holds its sealed
  // slot; a WAL-replay-adopted one (prepared_slot == nullptr) acquires a
  // fresh slot now, through the normal path.
  PCommitSlot* slot = tx.context()->prepared_slot;
  bool fresh_slot = false;
  if (slot == nullptr) {
    std::vector<TouchEntry> touches;
    touches.reserve(tx.writes().size());
    for (const Write& write : tx.writes()) {
      touches.push_back(TouchEntry::Make(write.table->id(), write.loc,
                                         write.invalidate));
    }
    auto slot_result = commit_table_->AcquireSlot(touches);
    if (!slot_result.ok()) return slot_result.status();
    slot = *slot_result;
    fresh_slot = true;
  }

  auto cid_result = AllocCid();
  if (!cid_result.ok()) {
    if (fresh_slot) commit_table_->ReleaseSlot(slot);
    return cid_result.status();
  }
  const storage::Cid cid = *cid_result;

  // kPrepared → kCommitting: from here a crash rolls the commit forward
  // through the ordinary in-flight recovery, and the prepared slot can
  // never resurrect as in-doubt again.
  commit_table_->SealSlot(slot, cid);

  if (hook_ != nullptr) {
    Status hook_status = hook_->OnCommit(cid, tx);
    if (!hook_status.ok()) {
      if (fresh_slot) {
        commit_table_->ReleaseSlot(slot);
      } else {
        // Re-seal as prepared: in WAL mode the log (which still says
        // "prepared, undecided") is the recovery source, so the volatile
        // slot must agree for a coordinator retry to find the txn.
        commit_table_->SealSlotPrepared(slot, tx.tid(),
                                        tx.context()->gtid);
      }
      publisher_.Skip(cid, *commit_table_, heap_->blackbox());
      return hook_status;
    }
  }

  StampWrites(tx.writes(), cid);
  publisher_.Publish(cid, *commit_table_, heap_->blackbox());
  commit_table_->ReleaseSlot(slot);
  tx.set_commit_cid(cid);
  tx.set_state(TxnState::kCommitted);
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& commit_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.commit.count");
  commit_count.Inc();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kTxnCommit, tx.tid(), cid,
               tx.writes().size(), 0);
  }
#endif
  return Status::OK();
}

Status TxnManager::DecideAbort(Transaction& tx) {
  auto& region = heap_->region();
  for (const Write& write : tx.writes()) {
    storage::MvccEntry* entry = write.table->mvcc(write.loc);
    if (write.invalidate) {
      if (entry->begin != storage::kCidInfinity) {
        storage::ReleaseClaim(region, entry, tx.tid());
      }
    } else {
      region.AtomicPersist64(&entry->tid, storage::kTidNone);
    }
  }
  if (hook_ != nullptr) {
    HYRISE_NV_RETURN_NOT_OK(hook_->OnAbort(tx));
  }
  if (PCommitSlot* slot = tx.context()->prepared_slot) {
    commit_table_->ReleaseSlot(slot);
    tx.context()->prepared_slot = nullptr;
  }
  tx.set_state(TxnState::kAborted);
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& abort_count =
      obs::MetricsRegistry::Instance().GetCounter("txn.abort.count");
  abort_count.Inc();
  if (obs::BlackboxWriter* bb = heap_->blackbox()) {
    bb->Record(obs::BlackboxEventType::kTxnAbort, tx.tid(),
               tx.writes().size());
  }
#endif
  return Status::OK();
}

Status TxnManager::SealAdoptedPrepared(std::shared_ptr<TxnContext> ctx) {
  HYRISE_NV_DCHECK(ctx->state == TxnState::kPrepared,
                   "adopted ctx must be prepared");
  if (!ctx->writes.empty()) {
    std::vector<TouchEntry> touches;
    touches.reserve(ctx->writes.size());
    for (const Write& write : ctx->writes) {
      touches.push_back(TouchEntry::Make(write.table->id(), write.loc,
                                         write.invalidate));
    }
    auto slot_result = commit_table_->AcquireSlot(touches);
    if (!slot_result.ok()) return slot_result.status();
    commit_table_->SealSlotPrepared(*slot_result, ctx->tid, ctx->gtid);
    ctx->prepared_slot = *slot_result;
  }
  AdoptPrepared(std::move(ctx));
  return Status::OK();
}

void TxnManager::AdoptPrepared(std::shared_ptr<TxnContext> ctx) {
  HYRISE_NV_DCHECK(ctx->state == TxnState::kPrepared,
                   "adopted ctx must be prepared");
  std::lock_guard<std::mutex> guard(prepared_mutex_);
  prepared_tids_.emplace(ctx->tid, ctx->gtid);
  prepared_.emplace(ctx->gtid, std::move(ctx));
}

Status TxnManager::AdoptPreparedFromTable(storage::Catalog& catalog) {
  auto prepared_result = commit_table_->FindPrepared();
  if (!prepared_result.ok()) return prepared_result.status();
  if (prepared_result->empty()) return Status::OK();
  std::unordered_map<uint64_t, storage::Table*> tables_by_id;
  tables_by_id.reserve(catalog.tables().size());
  for (const auto& t : catalog.tables()) {
    tables_by_id.emplace(t->id(), t.get());
  }
  for (auto& prepared : *prepared_result) {
    auto ctx = std::make_shared<TxnContext>();
    ctx->tid = prepared.tid;
    ctx->gtid = prepared.gtid;
    ctx->state = TxnState::kPrepared;
    ctx->prepared_slot = prepared.slot;
    ctx->writes.reserve(prepared.touches.size());
    for (const TouchEntry& touch : prepared.touches) {
      auto table_it = tables_by_id.find(touch.table_id);
      if (table_it == tables_by_id.end()) {
        return Status::Corruption("prepared txn references table id " +
                                  std::to_string(touch.table_id));
      }
      storage::Table* table = table_it->second;
      const storage::RowLocation loc = touch.location();
      const uint64_t rows = loc.in_main ? table->main_row_count()
                                        : table->delta_row_count();
      if (loc.row >= rows) {
        return Status::Corruption("prepared txn references bad row");
      }
      ctx->writes.push_back(Write{table, loc, touch.invalidate()});
    }
    HYRISE_NV_LOG(kInfo) << "adopted in-doubt transaction gtid="
                         << prepared.gtid << " tid=" << prepared.tid
                         << " with " << ctx->writes.size() << " writes";
    AdoptPrepared(std::move(ctx));
  }
  return Status::OK();
}

Status TxnManager::RecoverInFlight(storage::Catalog& catalog) {
  auto in_flight_result = commit_table_->FindInFlight();
  if (!in_flight_result.ok()) return in_flight_result.status();
  auto& region = heap_->region();
  // Resolve table ids once: recovery cost stays O(tables + touches)
  // instead of O(tables × touches).
  std::unordered_map<uint64_t, storage::Table*> tables_by_id;
  tables_by_id.reserve(catalog.tables().size());
  for (const auto& t : catalog.tables()) {
    tables_by_id.emplace(t->id(), t.get());
  }
  for (auto& commit : *in_flight_result) {
    HYRISE_NV_LOG(kInfo) << "rolling forward in-flight commit cid="
                         << commit.cid << " with "
                         << commit.touches.size() << " touches";
    for (const TouchEntry& touch : commit.touches) {
      auto table_it = tables_by_id.find(touch.table_id);
      if (table_it == tables_by_id.end()) {
        return Status::Corruption("in-flight commit references table id " +
                                  std::to_string(touch.table_id));
      }
      storage::Table* table = table_it->second;
      const storage::RowLocation loc = touch.location();
      const uint64_t rows = loc.in_main ? table->main_row_count()
                                        : table->delta_row_count();
      if (loc.row >= rows) {
        return Status::Corruption("in-flight commit references bad row");
      }
      storage::MvccEntry* entry = table->mvcc(loc);
      if (touch.invalidate()) {
        region.AtomicPersist64(&entry->end, commit.cid);
      } else {
        region.AtomicPersist64(&entry->begin, commit.cid);
      }
      region.AtomicPersist64(&entry->tid, storage::kTidNone);
    }
    if (commit.cid > commit_table_->watermark()) {
      commit_table_->AdvanceWatermark(commit.cid);
    }
    commit_table_->ReleaseSlot(commit.slot);
  }
  return Status::OK();
}

}  // namespace hyrise_nv::txn
