#ifndef HYRISE_NV_TXN_TXN_MANAGER_H_
#define HYRISE_NV_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/trace.h"
#include "storage/catalog.h"
#include "txn/commit_pipeline.h"
#include "txn/commit_table.h"
#include "txn/transaction.h"

namespace hyrise_nv::obs {
class BlackboxWriter;
}  // namespace hyrise_nv::obs

namespace hyrise_nv::txn {

/// Hook invoked inside the commit/abort paths. The WAL engine implements
/// it to write (and group-sync) commit records; the NVM engine runs
/// without one — durability comes from the commit table itself.
///
/// OnCommit is called concurrently from parallel committers; hook
/// implementations synchronise internally (the WAL hook batches callers
/// into one group fsync).
class CommitHook {
 public:
  virtual ~CommitHook() = default;
  /// Called before rows are stamped; must make the commit durable in the
  /// hook's own medium (e.g. WAL record + sync).
  virtual Status OnCommit(storage::Cid cid, const Transaction& tx) = 0;
  /// Called after an abort rolled back volatile claims.
  virtual Status OnAbort(const Transaction& tx) = 0;
};

/// Registry of active transactions, sharded by TID so concurrent
/// Begin/Commit/Abort don't contend on one mutex. TIDs are sequential,
/// so `tid % kShards` round-robins neighbouring transactions onto
/// different shards.
///
/// Holding the shared context (not just the tid) lets AbortAllActive
/// roll back write sets whose Transaction handles live elsewhere (or
/// nowhere — a dead client).
class ActiveTxnRegistry {
 public:
  static constexpr size_t kShards = 16;

  void Insert(storage::Tid tid, std::shared_ptr<TxnContext> ctx) {
    Shard& s = shard(tid);
    std::lock_guard<std::mutex> guard(s.mutex);
    s.txns.emplace(tid, std::move(ctx));
  }
  void Erase(storage::Tid tid) {
    Shard& s = shard(tid);
    std::lock_guard<std::mutex> guard(s.mutex);
    s.txns.erase(tid);
  }
  bool Contains(storage::Tid tid) const {
    const Shard& s = shard(tid);
    std::lock_guard<std::mutex> guard(s.mutex);
    return s.txns.count(tid) > 0;
  }
  size_t Count() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> guard(s.mutex);
      total += s.txns.size();
    }
    return total;
  }
  /// Any one active context, or nullptr when empty (AbortAllActive's
  /// work loop).
  std::shared_ptr<TxnContext> PeekAny() const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> guard(s.mutex);
      if (!s.txns.empty()) return s.txns.begin()->second;
    }
    return nullptr;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<storage::Tid, std::shared_ptr<TxnContext>> txns;
  };
  Shard& shard(storage::Tid tid) { return shards_[tid % kShards]; }
  const Shard& shard(storage::Tid tid) const {
    return shards_[tid % kShards];
  }
  Shard shards_[kShards];
};

/// MVCC transaction manager implementing the paper's NVM commit protocol
/// (DESIGN.md §4.4) as a concurrent pipeline (DESIGN.md §12):
///
///   1. writes leave rows claimed (tid) and unstamped (begin = ∞);
///   2. Commit acquires a commit slot, draws a CID from a lock-free
///      block allocator, persists the touch list and flips the slot to
///      kCommitting (durability point), runs the durability hook, stamps
///      every touched row with the CID — all concurrently with other
///      committers — and finally publishes through the ordered-publish
///      queue, which advances the persisted watermark strictly in CID
///      order (batched over whole runs of finished commits);
///   3. a crash at any point either rolls the commit forward (slot was
///      committing → recovery re-stamps, idempotently) or leaves the
///      transaction invisible (no slot → claims are stale, stolen later).
///
/// TIDs and CIDs are drawn from persisted blocks so they are never reused
/// across restarts without scanning anything.
class TxnManager {
 public:
  TxnManager(alloc::PHeap& heap, std::unique_ptr<CommitTable> commit_table);

  static Result<std::unique_ptr<TxnManager>> Format(alloc::PHeap& heap);
  static Result<std::unique_ptr<TxnManager>> Attach(alloc::PHeap& heap);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(TxnManager);

  /// Starts a transaction with a snapshot of the current watermark.
  Result<Transaction> Begin();

  /// Commits: assigns a CID, persists the commit, stamps rows, publishes
  /// in CID order. Invokes `hook` (if set) before stamping. Safe to call
  /// from many threads at once.
  Status Commit(Transaction& tx);

  /// Aborts: releases claims, tombstones own inserts.
  Status Abort(Transaction& tx);

  /// Whether `tid` belongs to a currently active transaction.
  bool IsActive(storage::Tid tid) const;

  /// Number of currently active transactions.
  size_t ActiveCount() const;

  /// Force-aborts every active transaction (claims released, own inserts
  /// tombstoned) — the shutdown/drain path: after it returns no
  /// transaction is active and Close() can seal a clean image. Returns
  /// the number aborted; individual abort failures are logged, counted,
  /// and do not stop the sweep.
  size_t AbortAllActive();

  storage::Cid watermark() const { return commit_table_->watermark(); }

  /// A snapshot for ad-hoc reads outside a transaction.
  storage::Cid ReadSnapshot() const { return commit_table_->watermark(); }

  void set_commit_hook(CommitHook* hook) { hook_ = hook; }

  /// Samples one in every `sample_every` transactions for span tracing
  /// (0 disables). Sampled commits record per-phase latencies to the
  /// txn.trace.* histograms, emit a kTxnTrace flight-recorder event, and
  /// publish their span tree via LastSampledTrace().
  void SetTxnSampling(uint64_t sample_every) {
    sample_every_.store(sample_every, std::memory_order_relaxed);
  }
  uint64_t txn_sampling() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Span tree of the most recent sampled commit (empty before the first
  /// one). Thread-safe copy.
  obs::SpanNode LastSampledTrace() const;

  /// Recovery: completes all in-flight commits found on NVM. `catalog`
  /// resolves table ids. O(in-flight work), independent of data size.
  Status RecoverInFlight(storage::Catalog& catalog);

  CommitTable& commit_table() { return *commit_table_; }

 private:
  // Stamps all writes of a commit with `cid` and clears claims.
  void StampWrites(const std::vector<Write>& writes, storage::Cid cid);

  // Draws one CID from the lock-free allocator, priming the ordered
  // publisher with the first block, and retiring any CID abandoned by a
  // failed block refill so the publish queue can't stall on it.
  Result<storage::Cid> AllocCid();

  // Builds + publishes the span tree of a sampled commit and feeds the
  // txn.trace.* histograms and the flight recorder.
  void RecordSampledTrace(const Transaction& tx, uint64_t write_set_end,
                          uint64_t persist_end, uint64_t commit_end,
                          obs::BlackboxWriter* bb);

  alloc::PHeap* heap_;
  std::unique_ptr<CommitTable> commit_table_;
  CommitHook* hook_ = nullptr;

  ActiveTxnRegistry active_;

  IdAllocator tid_alloc_{kTidBlockSize};
  IdAllocator cid_alloc_{kTidBlockSize};
  OrderedPublisher publisher_;

  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> sample_counter_{0};
  mutable std::mutex trace_mutex_;
  obs::SpanNode last_trace_;
};

}  // namespace hyrise_nv::txn

#endif  // HYRISE_NV_TXN_TXN_MANAGER_H_
