#ifndef HYRISE_NV_TXN_TXN_MANAGER_H_
#define HYRISE_NV_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/trace.h"
#include "storage/catalog.h"
#include "txn/commit_pipeline.h"
#include "txn/commit_table.h"
#include "txn/transaction.h"

namespace hyrise_nv::obs {
class BlackboxWriter;
}  // namespace hyrise_nv::obs

namespace hyrise_nv::txn {

/// Hook invoked inside the commit/abort paths. The WAL engine implements
/// it to write (and group-sync) commit records; the NVM engine runs
/// without one — durability comes from the commit table itself.
///
/// OnCommit is called concurrently from parallel committers; hook
/// implementations synchronise internally (the WAL hook batches callers
/// into one group fsync).
class CommitHook {
 public:
  virtual ~CommitHook() = default;
  /// Called before rows are stamped; must make the commit durable in the
  /// hook's own medium (e.g. WAL record + sync).
  virtual Status OnCommit(storage::Cid cid, const Transaction& tx) = 0;
  /// Called after an abort rolled back volatile claims.
  virtual Status OnAbort(const Transaction& tx) = 0;
  /// 2PC phase one (DESIGN.md §16): called after the commit-table slot is
  /// sealed kPrepared; must make the prepare vote durable in the hook's
  /// own medium (WAL kPrepare record joining the commit group fsync).
  virtual Status OnPrepare(uint64_t gtid, const Transaction& tx) {
    (void)gtid;
    (void)tx;
    return Status::OK();
  }
};

/// Registry of active transactions, sharded by TID so concurrent
/// Begin/Commit/Abort don't contend on one mutex. TIDs are sequential,
/// so `tid % kShards` round-robins neighbouring transactions onto
/// different shards.
///
/// Holding the shared context (not just the tid) lets AbortAllActive
/// roll back write sets whose Transaction handles live elsewhere (or
/// nowhere — a dead client).
class ActiveTxnRegistry {
 public:
  static constexpr size_t kShards = 16;

  void Insert(storage::Tid tid, std::shared_ptr<TxnContext> ctx) {
    Shard& s = shard(tid);
    std::lock_guard<std::mutex> guard(s.mutex);
    s.txns.emplace(tid, std::move(ctx));
  }
  void Erase(storage::Tid tid) {
    Shard& s = shard(tid);
    std::lock_guard<std::mutex> guard(s.mutex);
    s.txns.erase(tid);
  }
  bool Contains(storage::Tid tid) const {
    const Shard& s = shard(tid);
    std::lock_guard<std::mutex> guard(s.mutex);
    return s.txns.count(tid) > 0;
  }
  size_t Count() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> guard(s.mutex);
      total += s.txns.size();
    }
    return total;
  }
  /// Any one active context, or nullptr when empty (AbortAllActive's
  /// work loop).
  std::shared_ptr<TxnContext> PeekAny() const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> guard(s.mutex);
      if (!s.txns.empty()) return s.txns.begin()->second;
    }
    return nullptr;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<storage::Tid, std::shared_ptr<TxnContext>> txns;
  };
  Shard& shard(storage::Tid tid) { return shards_[tid % kShards]; }
  const Shard& shard(storage::Tid tid) const {
    return shards_[tid % kShards];
  }
  Shard shards_[kShards];
};

/// MVCC transaction manager implementing the paper's NVM commit protocol
/// (DESIGN.md §4.4) as a concurrent pipeline (DESIGN.md §12):
///
///   1. writes leave rows claimed (tid) and unstamped (begin = ∞);
///   2. Commit acquires a commit slot, draws a CID from a lock-free
///      block allocator, persists the touch list and flips the slot to
///      kCommitting (durability point), runs the durability hook, stamps
///      every touched row with the CID — all concurrently with other
///      committers — and finally publishes through the ordered-publish
///      queue, which advances the persisted watermark strictly in CID
///      order (batched over whole runs of finished commits);
///   3. a crash at any point either rolls the commit forward (slot was
///      committing → recovery re-stamps, idempotently) or leaves the
///      transaction invisible (no slot → claims are stale, stolen later).
///
/// TIDs and CIDs are drawn from persisted blocks so they are never reused
/// across restarts without scanning anything.
class TxnManager {
 public:
  TxnManager(alloc::PHeap& heap, std::unique_ptr<CommitTable> commit_table);

  static Result<std::unique_ptr<TxnManager>> Format(alloc::PHeap& heap);
  static Result<std::unique_ptr<TxnManager>> Attach(alloc::PHeap& heap);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(TxnManager);

  /// Starts a transaction with a snapshot of the current watermark.
  Result<Transaction> Begin();

  /// Commits: assigns a CID, persists the commit, stamps rows, publishes
  /// in CID order. Invokes `hook` (if set) before stamping. Safe to call
  /// from many threads at once.
  Status Commit(Transaction& tx);

  /// Aborts: releases claims, tombstones own inserts.
  Status Abort(Transaction& tx);

  /// 2PC phase one: durably seals the transaction's write set under the
  /// coordinator-issued `gtid` (kPrepared commit slot + OnPrepare hook)
  /// and moves it from the active registry to the prepared registry. The
  /// transaction no longer belongs to any session; its row claims stay
  /// held (IsActive covers prepared TIDs) and its effects stay invisible
  /// until Decide. Fails (transaction still active, caller aborts) if the
  /// durability step fails. Read-only transactions prepare without any
  /// durable state. Rejects duplicate gtids.
  Status Prepare(Transaction& tx, uint64_t gtid);

  /// 2PC phase two: commits (assigns a CID, stamps, publishes) or aborts
  /// (releases claims) the prepared transaction `gtid`. Idempotent by
  /// design: an unknown gtid answers OK, so coordinator retries and
  /// client reconnect races are harmless (the coordinator never flips a
  /// logged decision).
  Status Decide(uint64_t gtid, bool commit);

  /// Gtids of every prepared-but-undecided transaction (the kInDoubt
  /// wire answer for the coordinator's recovery handshake).
  std::vector<uint64_t> InDoubtGtids() const;

  /// Number of prepared-but-undecided transactions.
  size_t PreparedCount() const;

  /// Recovery: adopts a reconstructed in-doubt transaction (WAL replay
  /// path; ctx->prepared_slot == nullptr, a slot is acquired at decide
  /// time). The ctx must carry tid, gtid, state kPrepared and the
  /// rebuilt write set.
  void AdoptPrepared(std::shared_ptr<TxnContext> ctx);

  /// Like AdoptPrepared, but first acquires and seals a kPrepared commit
  /// slot for the write set (no OnPrepare hook — the log already holds
  /// the prepare record). Used when the commit table itself must reflect
  /// the in-doubt state, e.g. when rebuilding an NVM image from the log.
  Status SealAdoptedPrepared(std::shared_ptr<TxnContext> ctx);

  /// Recovery: scans the commit table for kPrepared slots (NVM instant
  /// restart path) and adopts each as an in-doubt transaction, rebuilding
  /// its write set from the persisted touch list. The original slot is
  /// kept claimed and reused at decide time so a later restart never sees
  /// a stale prepared slot for a decided transaction.
  Status AdoptPreparedFromTable(storage::Catalog& catalog);

  /// Whether `tid` belongs to a currently active or prepared transaction
  /// (prepared TIDs must stay "live" or their row claims would be stolen).
  bool IsActive(storage::Tid tid) const;

  /// Number of currently active transactions.
  size_t ActiveCount() const;

  /// Force-aborts every active transaction (claims released, own inserts
  /// tombstoned) — the shutdown/drain path: after it returns no
  /// transaction is active and Close() can seal a clean image. Returns
  /// the number aborted; individual abort failures are logged, counted,
  /// and do not stop the sweep.
  size_t AbortAllActive();

  storage::Cid watermark() const { return commit_table_->watermark(); }

  /// A snapshot for ad-hoc reads outside a transaction.
  storage::Cid ReadSnapshot() const { return commit_table_->watermark(); }

  void set_commit_hook(CommitHook* hook) { hook_ = hook; }

  /// Samples one in every `sample_every` transactions for span tracing
  /// (0 disables). Sampled commits record per-phase latencies to the
  /// txn.trace.* histograms, emit a kTxnTrace flight-recorder event, and
  /// publish their span tree via LastSampledTrace().
  void SetTxnSampling(uint64_t sample_every) {
    sample_every_.store(sample_every, std::memory_order_relaxed);
  }
  uint64_t txn_sampling() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Span tree of the most recent sampled commit (empty before the first
  /// one). Thread-safe copy.
  obs::SpanNode LastSampledTrace() const;

  /// Recovery: completes all in-flight commits found on NVM. `catalog`
  /// resolves table ids. O(in-flight work), independent of data size.
  Status RecoverInFlight(storage::Catalog& catalog);

  CommitTable& commit_table() { return *commit_table_; }

 private:
  // Stamps all writes of a commit with `cid` and clears claims.
  void StampWrites(const std::vector<Write>& writes, storage::Cid cid);

  // Draws one CID from the lock-free allocator, priming the ordered
  // publisher with the first block, and retiring any CID abandoned by a
  // failed block refill so the publish queue can't stall on it.
  Result<storage::Cid> AllocCid();

  // Builds + publishes the span tree of a sampled commit and feeds the
  // txn.trace.* histograms and the flight recorder.
  void RecordSampledTrace(const Transaction& tx, uint64_t write_set_end,
                          uint64_t persist_end, uint64_t commit_end,
                          obs::BlackboxWriter* bb);

  // Commits a prepared transaction (decide path; `tx` is kPrepared).
  Status DecideCommit(Transaction& tx);
  // Aborts a prepared transaction (decide / presumed-abort path).
  Status DecideAbort(Transaction& tx);

  alloc::PHeap* heap_;
  std::unique_ptr<CommitTable> commit_table_;
  CommitHook* hook_ = nullptr;

  ActiveTxnRegistry active_;

  /// Prepared-but-undecided transactions, keyed by coordinator gtid, plus
  /// their TIDs (IsActive lookups). A bounded ring of recently decided
  /// gtids makes duplicate decides observable as repeats rather than
  /// unknowns (both answer OK). One mutex is fine: 2PC traffic is orders
  /// of magnitude rarer than single-shard commits.
  mutable std::mutex prepared_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<TxnContext>> prepared_;
  std::unordered_map<storage::Tid, uint64_t> prepared_tids_;
  static constexpr size_t kRetiredGtidRing = 1024;
  std::vector<uint64_t> retired_gtids_;
  size_t retired_cursor_ = 0;

  IdAllocator tid_alloc_{kTidBlockSize};
  IdAllocator cid_alloc_{kTidBlockSize};
  OrderedPublisher publisher_;

  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> sample_counter_{0};
  mutable std::mutex trace_mutex_;
  obs::SpanNode last_trace_;
};

}  // namespace hyrise_nv::txn

#endif  // HYRISE_NV_TXN_TXN_MANAGER_H_
