#include "common/bit_util.h"

#include "common/macros.h"

namespace hyrise_nv {

uint8_t BitsFor(uint64_t n) {
  uint8_t bits = 1;
  while (bits < 64 && (n >> bits) != 0) ++bits;
  return bits;
}

namespace bitpack {

size_t WordsFor(size_t count, uint8_t bits) {
  return (count * bits + 63) / 64;
}

void Set(uint64_t* words, size_t index, uint8_t bits, uint64_t value) {
  HYRISE_NV_DCHECK(bits >= 1 && bits <= 64, "bit width out of range");
  HYRISE_NV_DCHECK(bits == 64 || value < (uint64_t{1} << bits),
                   "value does not fit in bit width");
  const size_t bit_pos = index * bits;
  const size_t word = bit_pos / 64;
  const size_t offset = bit_pos % 64;
  const uint64_t mask = (bits == 64) ? ~uint64_t{0}
                                     : ((uint64_t{1} << bits) - 1);
  words[word] = (words[word] & ~(mask << offset)) | (value << offset);
  const size_t spill = offset + bits;
  if (spill > 64) {
    const size_t hi_bits = spill - 64;
    const uint64_t hi_mask = (uint64_t{1} << hi_bits) - 1;
    words[word + 1] =
        (words[word + 1] & ~hi_mask) | (value >> (bits - hi_bits));
  }
}

uint64_t Get(const uint64_t* words, size_t index, uint8_t bits) {
  HYRISE_NV_DCHECK(bits >= 1 && bits <= 64, "bit width out of range");
  const size_t bit_pos = index * bits;
  const size_t word = bit_pos / 64;
  const size_t offset = bit_pos % 64;
  const uint64_t mask = (bits == 64) ? ~uint64_t{0}
                                     : ((uint64_t{1} << bits) - 1);
  uint64_t value = words[word] >> offset;
  const size_t spill = offset + bits;
  if (spill > 64) {
    value |= words[word + 1] << (64 - offset);
  }
  return value & mask;
}

}  // namespace bitpack
}  // namespace hyrise_nv
