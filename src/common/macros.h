#ifndef HYRISE_NV_COMMON_MACROS_H_
#define HYRISE_NV_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Deletes copy construction and copy assignment for `TypeName`.
#define HYRISE_NV_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

/// Deletes all copy and move operations for `TypeName`.
#define HYRISE_NV_DISALLOW_COPY_AND_MOVE(TypeName) \
  HYRISE_NV_DISALLOW_COPY(TypeName);               \
  TypeName(TypeName&&) = delete;                   \
  TypeName& operator=(TypeName&&) = delete

#define HYRISE_NV_LIKELY(x) __builtin_expect(!!(x), 1)
#define HYRISE_NV_UNLIKELY(x) __builtin_expect(!!(x), 0)

/// Unconditional invariant check. The engine never runs with these disabled:
/// a violated invariant in a storage engine must stop the process before it
/// persists corrupt state.
#define HYRISE_NV_CHECK(cond, msg)                                           \
  do {                                                                       \
    if (HYRISE_NV_UNLIKELY(!(cond))) {                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s — %s\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-only invariant check for hot paths.
#ifdef NDEBUG
#define HYRISE_NV_DCHECK(cond, msg) \
  do {                              \
  } while (0)
#else
#define HYRISE_NV_DCHECK(cond, msg) HYRISE_NV_CHECK(cond, msg)
#endif

/// Propagates a non-OK Status out of the current function.
#define HYRISE_NV_RETURN_NOT_OK(expr)                 \
  do {                                                \
    ::hyrise_nv::Status _st = (expr);                 \
    if (HYRISE_NV_UNLIKELY(!_st.ok())) return _st;    \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates its
/// error Status.
#define HYRISE_NV_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto _result_##__LINE__ = (rexpr);                       \
  if (HYRISE_NV_UNLIKELY(!_result_##__LINE__.ok()))        \
    return _result_##__LINE__.status();                    \
  lhs = std::move(_result_##__LINE__).ValueUnsafe()

#endif  // HYRISE_NV_COMMON_MACROS_H_
