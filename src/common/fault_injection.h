#ifndef HYRISE_NV_COMMON_FAULT_INJECTION_H_
#define HYRISE_NV_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace hyrise_nv {

/// Named fault points wired into the storage stack. Each point sits on a
/// code path that touches durable media, so firing one simulates a media
/// or device failure rather than a logic bug.
enum class FaultPoint : int {
  /// Flip one random bit inside the line range just persisted by
  /// PmemRegion::Persist — models NVM bit rot / a torn line.
  kNvmPersistBitFlip = 0,
  /// Spin for `param` nanoseconds (default 100us) inside Persist — models
  /// a stalled flush on a congested DIMM.
  kNvmPersistStall = 1,
  /// BlockDevice::Append fails with EIO before writing anything.
  kWalAppendEio = 2,
  /// BlockDevice::Append writes only half the payload, then fails. The
  /// device offset does not advance, so a retry overwrites the torn half.
  kWalAppendShortWrite = 3,
  /// BlockDevice::Sync fails with EIO before fdatasync.
  kWalSyncFail = 4,
  /// BlockDevice::Sync stalls for `param` nanoseconds (default 50ms)
  /// after a successful fdatasync — models a device write-cache flush
  /// hiccup. The sync succeeds; only its latency explodes.
  kWalSyncStall = 5,
  kNumFaultPoints = 6,
};

/// When a fault point fires. Fields combine: the point stays silent for
/// the first `trigger_after` hits, then fires each qualifying hit with
/// `probability`, and disarms itself after `max_fires` fires.
struct FaultPlan {
  /// Number of hits to ignore before the point becomes eligible.
  uint64_t trigger_after = 0;
  /// Chance [0,1] that an eligible hit fires. 1.0 = always.
  double probability = 1.0;
  /// Auto-disarm after this many fires. 1 = one-shot.
  uint64_t max_fires = UINT64_MAX;
  /// Point-specific parameter (e.g. stall nanoseconds). 0 = default.
  uint64_t param = 0;
};

/// Process-wide, deterministic fault injector. All state lives in one
/// singleton so tests can arm a plan before exercising a Database and the
/// fault fires deep inside the stack without any plumbing.
///
/// Determinism: the internal PRNG is splitmix64 seeded via Reseed(), so a
/// test that arms the same plans against the same workload sees the same
/// bits flip. Thread-safe; the unarmed fast path is one relaxed atomic
/// load.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `point` with `plan`, resetting its hit/fire counters.
  void Arm(FaultPoint point, const FaultPlan& plan);
  /// Disarms `point`; counters are kept for inspection.
  void Disarm(FaultPoint point);
  /// Disarms every point and clears all counters. Call from test
  /// teardown so state never leaks across tests.
  void DisarmAll();
  /// Reseeds the PRNG (also done by DisarmAll with the default seed).
  void Reseed(uint64_t seed);

  /// True if any point is armed — the single-load fast path callers
  /// check before paying for ShouldFire.
  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Returns true if `point` fires on this hit, advancing counters and
  /// auto-disarming when the plan's max_fires is reached. When non-null,
  /// `param` receives the plan's param value.
  bool ShouldFire(FaultPoint point, uint64_t* param = nullptr);

  /// Next PRNG value; used by injection sites to pick e.g. which bit to
  /// flip so that the choice is covered by the test seed.
  uint64_t Rand();

  /// Counters for assertions: how often the point was reached / fired.
  uint64_t hits(FaultPoint point) const;
  uint64_t fires(FaultPoint point) const;

 private:
  FaultInjector() = default;

  struct PointState {
    bool armed = false;
    FaultPlan plan;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  uint64_t RandLocked();

  mutable std::mutex mutex_;
  std::atomic<int> armed_count_{0};
  PointState points_[static_cast<int>(FaultPoint::kNumFaultPoints)];
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace hyrise_nv

#endif  // HYRISE_NV_COMMON_FAULT_INJECTION_H_
