#ifndef HYRISE_NV_COMMON_LOGGING_H_
#define HYRISE_NV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hyrise_nv {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global log threshold. Messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when `level` passes the current threshold. The HYRISE_NV_LOG
/// macro checks this *before* constructing its stream, so a suppressed
/// message costs one atomic load — operands are never evaluated.
bool LogLevelEnabled(LogLevel level);

/// Writes one formatted line to stderr if `level` passes the threshold.
/// Thread-safe (a single formatted write per message).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal_logging {

/// Stream-style collector used by the HYRISE_NV_LOG macro.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a LogCapture in the enabled branch of HYRISE_NV_LOG so both
/// arms of the ternary have type void (the glog trick).
struct Voidify {
  void operator&(const LogCapture&) {}
};

}  // namespace internal_logging
}  // namespace hyrise_nv

/// Stream-style logging with an early level check: when the level is
/// suppressed, the stream (and every `<<` operand) is never constructed.
#define HYRISE_NV_LOG(level)                                       \
  !::hyrise_nv::LogLevelEnabled(::hyrise_nv::LogLevel::level)      \
      ? (void)0                                                    \
      : ::hyrise_nv::internal_logging::Voidify() &                 \
            ::hyrise_nv::internal_logging::LogCapture(             \
                ::hyrise_nv::LogLevel::level, __FILE__, __LINE__)

#endif  // HYRISE_NV_COMMON_LOGGING_H_
