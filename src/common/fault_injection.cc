#include "common/fault_injection.h"

#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(FaultPoint point, const FaultPlan& plan) {
  std::lock_guard<std::mutex> guard(mutex_);
  PointState& state = points_[static_cast<int>(point)];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.plan = plan;
  state.hits = 0;
  state.fires = 0;
}

void FaultInjector::Disarm(FaultPoint point) {
  std::lock_guard<std::mutex> guard(mutex_);
  PointState& state = points_[static_cast<int>(point)];
  if (state.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  state.armed = false;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (PointState& state : points_) {
    state = PointState{};
  }
  armed_count_.store(0, std::memory_order_relaxed);
  rng_state_ = 0x9E3779B97F4A7C15ull;
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> guard(mutex_);
  rng_state_ = seed;
}

bool FaultInjector::ShouldFire(FaultPoint point, uint64_t* param) {
  if (!any_armed()) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  PointState& state = points_[static_cast<int>(point)];
  if (!state.armed) return false;
  ++state.hits;
  if (state.hits <= state.plan.trigger_after) return false;
  if (state.plan.probability < 1.0) {
    const double roll =
        static_cast<double>(RandLocked() >> 11) * 0x1.0p-53;
    if (roll >= state.plan.probability) return false;
  }
  ++state.fires;
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& fires_count =
      obs::MetricsRegistry::Instance().GetCounter("fault.fires.count");
  fires_count.Inc();
  if (obs::BlackboxWriter* bb = obs::BlackboxWriter::Current()) {
    bb->Record(obs::BlackboxEventType::kFaultFire,
               static_cast<uint64_t>(point), state.plan.param);
  }
#endif
  if (param != nullptr) *param = state.plan.param;
  if (state.fires >= state.plan.max_fires) {
    state.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

uint64_t FaultInjector::Rand() {
  std::lock_guard<std::mutex> guard(mutex_);
  return RandLocked();
}

uint64_t FaultInjector::RandLocked() { return SplitMix64(&rng_state_); }

uint64_t FaultInjector::hits(FaultPoint point) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return points_[static_cast<int>(point)].hits;
}

uint64_t FaultInjector::fires(FaultPoint point) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return points_[static_cast<int>(point)].fires;
}

}  // namespace hyrise_nv
