#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hyrise_nv::common {

namespace {

const std::string kEmptyString;
const JsonValue kNullValue;

constexpr int kMaxDepth = 64;

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const std::string& JsonValue::AsString() const {
  return type_ == Type::kString ? string_ : kEmptyString;
}

const JsonValue& JsonValue::at(size_t i) const {
  return i < array_.size() ? array_[i] : kNullValue;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::Get(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? *v : kNullValue;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted_path) const {
  const JsonValue* node = this;
  while (!dotted_path.empty()) {
    const size_t dot = dotted_path.find('.');
    const std::string_view key = dotted_path.substr(0, dot);
    node = node->Find(key);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted_path.remove_prefix(dot + 1);
  }
  return node;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  AppendJsonEscaped(out, s);
  out += '"';
  return out;
}

std::string JsonValue::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      // Integral doubles inside the exactly-representable range print
      // as integers, so counter values round-trip without ".0" noise.
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out = buf;
      } else if (std::isfinite(number_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        out = buf;
      } else {
        out = "null";  // NaN/Inf are not JSON; degrade to null
      }
      break;
    }
    case Type::kString:
      out = JsonQuote(string_);
      break;
    case Type::kArray: {
      out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        out += array_[i].Dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        out += JsonQuote(k);
        out += ':';
        out += v.Dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

// --- Parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    HYRISE_NV_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        HYRISE_NV_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      HYRISE_NV_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':' in object");
      SkipWs();
      JsonValue value;
      HYRISE_NV_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue value;
      HYRISE_NV_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (text_.size() - pos_ < 4) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the code point. Surrogate pairs are passed
          // through as two 3-byte sequences (metric names are ASCII;
          // this keeps the parser total without a full UTF-16 decoder).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace hyrise_nv::common
