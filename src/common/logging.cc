#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace hyrise_nv {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, msg.c_str());
}

}  // namespace hyrise_nv
