#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace hyrise_nv {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// ISO-8601 UTC with milliseconds, e.g. 2026-08-06T12:34:56.789Z.
void FormatTimestamp(char* buf, size_t len) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  const size_t used = std::strftime(buf, len, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + used, len - used, ".%03dZ", static_cast<int>(ms));
}

/// Small dense per-thread id (first logger is 1), stabler across runs
/// than the pthread handle.
unsigned ThreadId() {
  static std::atomic<unsigned> next{1};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_log_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (!LogLevelEnabled(level)) return;
  char timestamp[40];
  FormatTimestamp(timestamp, sizeof(timestamp));
  std::fprintf(stderr, "[%s %s tid=%u %s:%d] %s\n", timestamp,
               LevelName(level), ThreadId(), Basename(file), line,
               msg.c_str());
}

}  // namespace hyrise_nv
