#include "common/status.h"

namespace hyrise_nv {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kTransactionConflict:
      return "TransactionConflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace hyrise_nv
