#ifndef HYRISE_NV_COMMON_JSON_H_
#define HYRISE_NV_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hyrise_nv::common {

/// Minimal JSON document model for the observability tooling: the stats
/// endpoint consumers (nvtop), the bench-regression comparator
/// (benchdiff), and tests that assert export surfaces emit valid JSON.
/// It is a strict RFC 8259 subset reader — no comments, no trailing
/// commas — sized for metric payloads, not for untrusted gigabyte blobs
/// (the parser recurses, with a depth cap).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors return the value or a zero-ish default on type
  /// mismatch; callers that care about the distinction check type()
  /// first.
  bool AsBool() const { return type_ == Type::kBool && bool_; }
  double AsDouble() const { return type_ == Type::kNumber ? number_ : 0.0; }
  int64_t AsInt() const { return static_cast<int64_t>(AsDouble()); }
  const std::string& AsString() const;

  /// Array access.
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const;
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  /// Object access. Find returns nullptr when absent; Get returns a
  /// shared null value. Insertion order is preserved for Dump().
  const JsonValue* Find(std::string_view key) const;
  const JsonValue& Get(std::string_view key) const;
  /// Dotted-path lookup over nested objects ("metrics.counters.x").
  const JsonValue* FindPath(std::string_view dotted_path) const;
  void Set(std::string key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Compact serialization (no whitespace). Numbers that are integral
  /// within 2^53 print without a decimal point.
  std::string Dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document. Trailing non-whitespace is an error, so a
/// concatenation of two documents is rejected rather than half-read.
Result<JsonValue> JsonParse(std::string_view text);

/// Appends `s` JSON-escaped (backslash, quote, control characters) to
/// `out`, without surrounding quotes.
void AppendJsonEscaped(std::string& out, std::string_view s);

/// Returns `s` JSON-escaped and quoted: `he"y` -> `"he\"y"`.
std::string JsonQuote(std::string_view s);

}  // namespace hyrise_nv::common

#endif  // HYRISE_NV_COMMON_JSON_H_
