#ifndef HYRISE_NV_COMMON_BIT_UTIL_H_
#define HYRISE_NV_COMMON_BIT_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyrise_nv {

/// Number of bits required to represent values in [0, n]; at least 1.
/// BitsFor(0) == 1 so that an all-zero column still has addressable slots.
uint8_t BitsFor(uint64_t n);

/// Rounds `v` up to the next multiple of `align` (power of two).
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Fixed-width bit packing over a caller-provided uint64_t word array.
/// Values are little-endian within and across words; a value may straddle a
/// word boundary. These are free functions so both volatile (std::vector)
/// and NVM-resident word buffers can use them.
namespace bitpack {

/// Number of 64-bit words needed to hold `count` values of `bits` width.
size_t WordsFor(size_t count, uint8_t bits);

/// Writes `value` (must fit in `bits`) at logical index `index`.
void Set(uint64_t* words, size_t index, uint8_t bits, uint64_t value);

/// Reads the value at logical index `index`.
uint64_t Get(const uint64_t* words, size_t index, uint8_t bits);

}  // namespace bitpack
}  // namespace hyrise_nv

#endif  // HYRISE_NV_COMMON_BIT_UTIL_H_
