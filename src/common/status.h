#ifndef HYRISE_NV_COMMON_STATUS_H_
#define HYRISE_NV_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "common/macros.h"

namespace hyrise_nv {

/// Error categories used across the engine. Mirrors the RocksDB/Arrow
/// convention: rich enough to branch on, cheap to pass by value.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kOutOfMemory = 6,
  kTransactionConflict = 7,
  kAborted = 8,
  kNotSupported = 9,
  kInternal = 10,
};

/// Returns a human-readable name for `code` ("OK", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: either OK, or a code plus a message.
///
/// The OK state carries no allocation, so returning `Status::OK()` from hot
/// paths is free. Exceptions are not used anywhere in this codebase (Google
/// style); all fallible public APIs return `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status TransactionConflict(std::string msg) {
    return Status(StatusCode::kTransactionConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Message text; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsConflict() const {
    return code() == StatusCode::kTransactionConflict;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

/// Either a value of type T or an error Status. Modelled on arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit so `return Status::...;` works in functions returning
  /// Result<T>. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    HYRISE_NV_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; the caller must have checked ok().
  const T& ValueUnsafe() const& { return value_; }
  T& ValueUnsafe() & { return value_; }
  T&& ValueUnsafe() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  T value_{};
  Status status_;
};

}  // namespace hyrise_nv

#endif  // HYRISE_NV_COMMON_STATUS_H_
