#include "common/crc32.h"

#include <array>

namespace hyrise_nv {

namespace {

// CRC-32C (Castagnoli), reflected polynomial 0x82F63B78.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<std::array<uint32_t, 256>, 4> BuildTables() {
  std::array<std::array<uint32_t, 256>, 4> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables[1][i] = (tables[0][i] >> 8) ^ tables[0][tables[0][i] & 0xFF];
    tables[2][i] = (tables[1][i] >> 8) ^ tables[0][tables[1][i] & 0xFF];
    tables[3][i] = (tables[2][i] >> 8) ^ tables[0][tables[2][i] & 0xFF];
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 4>& Tables() {
  static const auto& tables = *new auto(BuildTables());
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& t = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Slicing-by-4 main loop.
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^
          t[1][(crc >> 16) & 0xFF] ^ t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace hyrise_nv
