#ifndef HYRISE_NV_COMMON_RANDOM_H_
#define HYRISE_NV_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace hyrise_nv {

/// Small, fast, reproducible PRNG (xoshiro256**). Deterministic given a
/// seed, so every workload generator, crash-injection test, and benchmark
/// run is replayable from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to spread a small seed over the full state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of exactly `len` characters.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace hyrise_nv

#endif  // HYRISE_NV_COMMON_RANDOM_H_
