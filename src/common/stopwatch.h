#ifndef HYRISE_NV_COMMON_STOPWATCH_H_
#define HYRISE_NV_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace hyrise_nv {

/// Monotonic wall-clock stopwatch used by recovery phase timers and
/// benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hyrise_nv

#endif  // HYRISE_NV_COMMON_STOPWATCH_H_
