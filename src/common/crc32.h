#ifndef HYRISE_NV_COMMON_CRC32_H_
#define HYRISE_NV_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hyrise_nv {

/// Computes CRC-32C (Castagnoli polynomial) over `data[0..len)`, continuing
/// from `seed` (pass 0 for a fresh checksum). Used to frame WAL records and
/// to checksum NVM region headers and checkpoint blocks.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

/// Masked CRC as stored on disk/NVM. Masking (rotate + offset, as in
/// LevelDB) avoids the degenerate case where a CRC of data that itself
/// contains CRCs accidentally verifies.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace hyrise_nv

#endif  // HYRISE_NV_COMMON_CRC32_H_
