#ifndef HYRISE_NV_WORKLOAD_OPEN_LOOP_H_
#define HYRISE_NV_WORKLOAD_OPEN_LOOP_H_

#include <cmath>
#include <cstdint>

namespace hyrise_nv::workload {

/// Fixed arrival-rate schedule for open-loop load generation.
///
/// The defining property — the one that makes the measurement
/// coordinated-omission-safe — is that every operation has an *intended*
/// send time fixed up front by the schedule, independent of how the
/// server behaves. Latency is measured from the intended time, not the
/// actual send: when the server stalls and operations queue up behind
/// the stall, each queued operation's measured latency grows by its full
/// queueing delay instead of the stall being silently forgiven (which is
/// what closed-loop "send, wait, send" harnesses do).
///
/// Pure arithmetic over caller-supplied clocks, so tests drive it with a
/// fake clock.
class OpenLoopSchedule {
 public:
  /// `rate_rps` > 0; `total_ops` caps the schedule length.
  OpenLoopSchedule(double rate_rps, uint64_t total_ops)
      : ns_per_op_(1e9 / rate_rps), total_ops_(total_ops) {}

  uint64_t total_ops() const { return total_ops_; }

  /// Intended send time of operation `i`, in nanoseconds relative to the
  /// schedule start. Computed, not accumulated: no drift over long runs.
  uint64_t IntendedNs(uint64_t i) const {
    return static_cast<uint64_t>(
        std::llround(static_cast<double>(i) * ns_per_op_));
  }

  /// Number of operations whose intended send time is <= now_ns, capped
  /// at total_ops. The generator issues exactly DueCount(now) - issued
  /// operations per loop iteration, no matter how late it is running.
  uint64_t DueCount(uint64_t now_ns) const {
    const uint64_t due =
        static_cast<uint64_t>(static_cast<double>(now_ns) / ns_per_op_) + 1;
    return due < total_ops_ ? due : total_ops_;
  }

  /// Coordinated-omission-safe latency: completion measured against the
  /// *intended* send time. Saturates at 0 for completions that somehow
  /// precede their intended time (clock skew).
  static uint64_t LatencyNs(uint64_t intended_ns, uint64_t completion_ns) {
    return completion_ns > intended_ns ? completion_ns - intended_ns : 0;
  }

 private:
  const double ns_per_op_;
  const uint64_t total_ops_;
};

}  // namespace hyrise_nv::workload

#endif  // HYRISE_NV_WORKLOAD_OPEN_LOOP_H_
