#ifndef HYRISE_NV_WORKLOAD_TPCC_H_
#define HYRISE_NV_WORKLOAD_TPCC_H_

#include <cstdint>

#include "core/database.h"
#include "common/random.h"

namespace hyrise_nv::workload {

/// Scaled-down TPC-C-style order-processing workload: warehouses,
/// districts, customers, items, stock, orders, order lines, history, with
/// NewOrder / Payment / OrderStatus transactions. This is the OLTP mix
/// for the throughput experiments (E3). Composite keys are packed into
/// single int64 columns so the engine's single-column hash indexes serve
/// the point lookups.
struct TpccConfig {
  uint32_t warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 30;
  uint32_t items = 1000;
  uint64_t seed = 11;
  /// Transaction mix, TPC-C-like (remainder is read-only OrderStatus):
  /// NewOrder + Payment dominate; Delivery retires pending orders through
  /// the ordered index; StockLevel is a read-only stock scan.
  double new_order_fraction = 0.44;
  double payment_fraction = 0.42;
  double delivery_fraction = 0.05;
  double stock_level_fraction = 0.05;
};

struct TpccStats {
  uint64_t new_orders = 0;
  uint64_t payments = 0;
  uint64_t order_statuses = 0;
  uint64_t deliveries = 0;
  uint64_t stock_levels = 0;
  uint64_t aborts = 0;
  double seconds = 0;
  uint64_t transactions() const {
    return new_orders + payments + order_statuses + deliveries +
           stock_levels;
  }
  double TxnPerSecond() const {
    return seconds > 0 ? transactions() / seconds : 0;
  }
};

class TpccRunner {
 public:
  TpccRunner(core::Database* db, TpccConfig config)
      : db_(db), config_(config), rng_(config.seed) {}

  /// Creates and populates all tables + indexes.
  Status Load();

  /// Binds to tables another runner's Load() already created — the
  /// multi-threaded path: one runner loads, then one runner per thread
  /// binds to the shared database (distinct `config.seed` per thread
  /// keeps the access streams apart). `history_id_base` must be unique
  /// per runner so concurrently inserted history rows get unique ids.
  Status Bind(int64_t history_id_base);

  /// Runs `num_transactions` transactions of the configured mix.
  Result<TpccStats> Run(uint64_t num_transactions);

  // Packed-key helpers (exposed for tests).
  int64_t DistrictKey(uint32_t w, uint32_t d) const {
    return static_cast<int64_t>(w) * 100 + d;
  }
  int64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return (static_cast<int64_t>(w) * 100 + d) * 100000 + c;
  }
  int64_t StockKey(uint32_t item, uint32_t w) const {
    return static_cast<int64_t>(item) * 1000 + w;
  }
  int64_t OrderKey(uint32_t w, uint32_t d, int64_t o_id) const {
    return (static_cast<int64_t>(w) * 100 + d) * 1000000000 + o_id;
  }

 private:
  Status RunNewOrder(TpccStats* stats);
  Status RunPayment(TpccStats* stats);
  Status RunOrderStatus(TpccStats* stats);
  Status RunDelivery(TpccStats* stats);
  Status RunStockLevel(TpccStats* stats);

  // Returns the single visible row for key in `table`'s column 0, or
  // NotFound.
  Result<storage::RowLocation> PointLookup(txn::Transaction& tx,
                                           storage::Table* table,
                                           int64_t key);

  core::Database* db_;
  TpccConfig config_;
  Rng rng_;
  storage::Table* warehouse_ = nullptr;
  storage::Table* district_ = nullptr;
  storage::Table* customer_ = nullptr;
  storage::Table* item_ = nullptr;
  storage::Table* stock_ = nullptr;
  storage::Table* orders_ = nullptr;
  storage::Table* new_order_ = nullptr;
  storage::Table* order_line_ = nullptr;
  storage::Table* history_ = nullptr;
  int64_t next_history_id_ = 0;
};

}  // namespace hyrise_nv::workload

#endif  // HYRISE_NV_WORKLOAD_TPCC_H_
