#include "workload/tpcc.h"

#include "common/stopwatch.h"
#include "core/query.h"

namespace hyrise_nv::workload {

using storage::DataType;
using storage::RowLocation;
using storage::Value;

namespace {

Status CommitBatch(core::Database* db, txn::Transaction* tx,
                   uint64_t* in_batch) {
  if (++*in_batch >= 512) {
    HYRISE_NV_RETURN_NOT_OK(db->Commit(*tx));
    auto fresh = db->Begin();
    if (!fresh.ok()) return fresh.status();
    *tx = *fresh;
    *in_batch = 0;
  }
  return Status::OK();
}

}  // namespace

Status TpccRunner::Bind(int64_t history_id_base) {
  struct Binding {
    const char* name;
    storage::Table** slot;
  };
  Binding bindings[] = {
      {"warehouse", &warehouse_}, {"district", &district_},
      {"customer", &customer_},   {"item", &item_},
      {"stock", &stock_},         {"orders", &orders_},
      {"new_order", &new_order_}, {"order_line", &order_line_},
      {"history", &history_},
  };
  for (const Binding& b : bindings) {
    auto table_result = db_->GetTable(b.name);
    if (!table_result.ok()) return table_result.status();
    *b.slot = *table_result;
  }
  next_history_id_ = history_id_base;
  return Status::OK();
}

Status TpccRunner::Load() {
  auto make = [this](const char* name,
                     std::vector<storage::ColumnDef> cols)
      -> Result<storage::Table*> {
    auto schema_result = storage::Schema::Make(std::move(cols));
    if (!schema_result.ok()) return schema_result.status();
    return db_->CreateTable(name, *schema_result);
  };

  auto w = make("warehouse", {{"w_id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"ytd", DataType::kDouble}});
  if (!w.ok()) return w.status();
  warehouse_ = *w;
  auto d = make("district", {{"d_key", DataType::kInt64},
                             {"next_o_id", DataType::kInt64},
                             {"ytd", DataType::kDouble}});
  if (!d.ok()) return d.status();
  district_ = *d;
  auto c = make("customer", {{"c_key", DataType::kInt64},
                             {"name", DataType::kString},
                             {"balance", DataType::kDouble}});
  if (!c.ok()) return c.status();
  customer_ = *c;
  auto i = make("item", {{"i_id", DataType::kInt64},
                         {"name", DataType::kString},
                         {"price", DataType::kDouble}});
  if (!i.ok()) return i.status();
  item_ = *i;
  auto s = make("stock", {{"s_key", DataType::kInt64},
                          {"quantity", DataType::kInt64}});
  if (!s.ok()) return s.status();
  stock_ = *s;
  auto o = make("orders", {{"o_key", DataType::kInt64},
                           {"c_key", DataType::kInt64},
                           {"entry", DataType::kInt64}});
  if (!o.ok()) return o.status();
  orders_ = *o;
  auto no = make("new_order", {{"o_key", DataType::kInt64},
                               {"d_key", DataType::kInt64}});
  if (!no.ok()) return no.status();
  new_order_ = *no;
  auto ol = make("order_line", {{"ol_key", DataType::kInt64},
                                {"i_id", DataType::kInt64},
                                {"quantity", DataType::kInt64},
                                {"amount", DataType::kDouble}});
  if (!ol.ok()) return ol.status();
  order_line_ = *ol;
  auto h = make("history", {{"h_id", DataType::kInt64},
                            {"c_key", DataType::kInt64},
                            {"amount", DataType::kDouble}});
  if (!h.ok()) return h.status();
  history_ = *h;

  HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("warehouse", 0));
  HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("district", 0));
  HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("customer", 0));
  HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("item", 0));
  HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("stock", 0));
  HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("orders", 1));  // by customer
  // Ordered index: Delivery pops the oldest pending order per district.
  HYRISE_NV_RETURN_NOT_OK(db_->CreateOrderedIndex("new_order", 0));

  // Population.
  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  txn::Transaction tx = *tx_result;
  uint64_t in_batch = 0;
  auto insert = [&](storage::Table* table,
                    std::vector<Value> row) -> Status {
    auto result = db_->Insert(tx, table, row);
    if (!result.ok()) return result.status();
    return CommitBatch(db_, &tx, &in_batch);
  };

  for (uint32_t wid = 0; wid < config_.warehouses; ++wid) {
    HYRISE_NV_RETURN_NOT_OK(insert(
        warehouse_, {Value(static_cast<int64_t>(wid)),
                     Value("warehouse-" + std::to_string(wid)),
                     Value(0.0)}));
    for (uint32_t did = 0; did < config_.districts_per_warehouse; ++did) {
      HYRISE_NV_RETURN_NOT_OK(insert(
          district_,
          {Value(DistrictKey(wid, did)), Value(int64_t{1}), Value(0.0)}));
      for (uint32_t cid = 0; cid < config_.customers_per_district; ++cid) {
        HYRISE_NV_RETURN_NOT_OK(insert(
            customer_, {Value(CustomerKey(wid, did, cid)),
                        Value("customer-" + std::to_string(cid)),
                        Value(100.0)}));
      }
    }
  }
  for (uint32_t iid = 0; iid < config_.items; ++iid) {
    HYRISE_NV_RETURN_NOT_OK(
        insert(item_, {Value(static_cast<int64_t>(iid)),
                       Value("item-" + std::to_string(iid)),
                       Value(1.0 + (iid % 100) * 0.5)}));
    for (uint32_t wid = 0; wid < config_.warehouses; ++wid) {
      HYRISE_NV_RETURN_NOT_OK(insert(
          stock_, {Value(StockKey(iid, wid)), Value(int64_t{10000})}));
    }
  }
  return db_->Commit(tx);
}

Result<RowLocation> TpccRunner::PointLookup(txn::Transaction& tx,
                                            storage::Table* table,
                                            int64_t key) {
  auto rows =
      db_->ScanEqual(table, 0, Value(key), tx.snapshot(), tx.tid());
  if (!rows.ok()) return rows.status();
  if (rows->empty()) {
    return Status::NotFound("no visible row for key " +
                            std::to_string(key));
  }
  return rows->front();
}

Status TpccRunner::RunNewOrder(TpccStats* stats) {
  const uint32_t wid = static_cast<uint32_t>(
      rng_.Uniform(config_.warehouses));
  const uint32_t did = static_cast<uint32_t>(
      rng_.Uniform(config_.districts_per_warehouse));
  const uint32_t cid = static_cast<uint32_t>(
      rng_.Uniform(config_.customers_per_district));
  const uint32_t ol_count = 5 + static_cast<uint32_t>(rng_.Uniform(11));

  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  txn::Transaction tx = *tx_result;

  auto run = [&]() -> Status {
    // District: fetch and bump next_o_id.
    auto district_loc =
        PointLookup(tx, district_, DistrictKey(wid, did));
    if (!district_loc.ok()) return district_loc.status();
    const auto district_row = district_->GetRow(*district_loc);
    const int64_t o_id = std::get<int64_t>(district_row[1]);
    auto district_update = db_->Update(
        tx, district_, *district_loc,
        {district_row[0], Value(o_id + 1), district_row[2]});
    if (!district_update.ok()) return district_update.status();

    // Order lines: read item price, decrement stock, insert line.
    const int64_t o_key = OrderKey(wid, did, o_id);
    double total = 0;
    for (uint32_t line = 0; line < ol_count; ++line) {
      const uint32_t iid =
          static_cast<uint32_t>(rng_.Uniform(config_.items));
      auto item_loc = PointLookup(tx, item_, iid);
      if (!item_loc.ok()) return item_loc.status();
      const double price =
          std::get<double>(item_->GetValue(*item_loc, 2));
      const int64_t quantity = 1 + static_cast<int64_t>(rng_.Uniform(10));

      auto stock_loc = PointLookup(tx, stock_, StockKey(iid, wid));
      if (!stock_loc.ok()) return stock_loc.status();
      const int64_t stock_qty =
          std::get<int64_t>(stock_->GetValue(*stock_loc, 1));
      int64_t new_qty = stock_qty - quantity;
      if (new_qty < 10) new_qty += 91;  // TPC-C restock rule
      auto stock_update =
          db_->Update(tx, stock_, *stock_loc,
                      {Value(StockKey(iid, wid)), Value(new_qty)});
      if (!stock_update.ok()) return stock_update.status();

      const double amount = price * static_cast<double>(quantity);
      total += amount;
      auto line_insert = db_->Insert(
          tx, order_line_,
          {Value(o_key * 16 + line), Value(static_cast<int64_t>(iid)),
           Value(quantity), Value(amount)});
      if (!line_insert.ok()) return line_insert.status();
    }
    (void)total;

    auto order_insert = db_->Insert(
        tx, orders_, {Value(o_key), Value(CustomerKey(wid, did, cid)),
                      Value(static_cast<int64_t>(stats->transactions()))});
    if (!order_insert.ok()) return order_insert.status();
    auto pending_insert = db_->Insert(
        tx, new_order_, {Value(o_key), Value(DistrictKey(wid, did))});
    return pending_insert.status();
  };

  Status status = run();
  if (status.ok()) {
    HYRISE_NV_RETURN_NOT_OK(db_->Commit(tx));
    ++stats->new_orders;
    return Status::OK();
  }
  HYRISE_NV_RETURN_NOT_OK(db_->Abort(tx));
  if (status.IsConflict() || status.IsNotFound()) {
    ++stats->aborts;
    return Status::OK();
  }
  return status;
}

Status TpccRunner::RunPayment(TpccStats* stats) {
  const uint32_t wid = static_cast<uint32_t>(
      rng_.Uniform(config_.warehouses));
  const uint32_t did = static_cast<uint32_t>(
      rng_.Uniform(config_.districts_per_warehouse));
  const uint32_t cid = static_cast<uint32_t>(
      rng_.Uniform(config_.customers_per_district));
  const double amount = 1.0 + static_cast<double>(rng_.Uniform(5000)) / 100;

  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  txn::Transaction tx = *tx_result;

  auto run = [&]() -> Status {
    auto warehouse_loc = PointLookup(tx, warehouse_, wid);
    if (!warehouse_loc.ok()) return warehouse_loc.status();
    auto warehouse_row = warehouse_->GetRow(*warehouse_loc);
    auto warehouse_update = db_->Update(
        tx, warehouse_, *warehouse_loc,
        {warehouse_row[0], warehouse_row[1],
         Value(std::get<double>(warehouse_row[2]) + amount)});
    if (!warehouse_update.ok()) return warehouse_update.status();

    auto district_loc =
        PointLookup(tx, district_, DistrictKey(wid, did));
    if (!district_loc.ok()) return district_loc.status();
    auto district_row = district_->GetRow(*district_loc);
    auto district_update = db_->Update(
        tx, district_, *district_loc,
        {district_row[0], district_row[1],
         Value(std::get<double>(district_row[2]) + amount)});
    if (!district_update.ok()) return district_update.status();

    auto customer_loc =
        PointLookup(tx, customer_, CustomerKey(wid, did, cid));
    if (!customer_loc.ok()) return customer_loc.status();
    auto customer_row = customer_->GetRow(*customer_loc);
    auto customer_update = db_->Update(
        tx, customer_, *customer_loc,
        {customer_row[0], customer_row[1],
         Value(std::get<double>(customer_row[2]) - amount)});
    if (!customer_update.ok()) return customer_update.status();

    auto history_insert = db_->Insert(
        tx, history_,
        {Value(next_history_id_++), Value(CustomerKey(wid, did, cid)),
         Value(amount)});
    return history_insert.status();
  };

  Status status = run();
  if (status.ok()) {
    HYRISE_NV_RETURN_NOT_OK(db_->Commit(tx));
    ++stats->payments;
    return Status::OK();
  }
  HYRISE_NV_RETURN_NOT_OK(db_->Abort(tx));
  if (status.IsConflict() || status.IsNotFound()) {
    ++stats->aborts;
    return Status::OK();
  }
  return status;
}

Status TpccRunner::RunOrderStatus(TpccStats* stats) {
  const uint32_t wid = static_cast<uint32_t>(
      rng_.Uniform(config_.warehouses));
  const uint32_t did = static_cast<uint32_t>(
      rng_.Uniform(config_.districts_per_warehouse));
  const uint32_t cid = static_cast<uint32_t>(
      rng_.Uniform(config_.customers_per_district));

  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  txn::Transaction tx = *tx_result;

  auto customer_loc =
      PointLookup(tx, customer_, CustomerKey(wid, did, cid));
  if (customer_loc.ok()) {
    // Orders of this customer via the secondary index on c_key.
    auto orders = db_->ScanEqual(orders_, 1,
                                 Value(CustomerKey(wid, did, cid)),
                                 tx.snapshot(), tx.tid());
    if (!orders.ok()) {
      (void)db_->Abort(tx);
      return orders.status();
    }
  }
  HYRISE_NV_RETURN_NOT_OK(db_->Commit(tx));
  ++stats->order_statuses;
  return Status::OK();
}

Status TpccRunner::RunDelivery(TpccStats* stats) {
  const uint32_t wid = static_cast<uint32_t>(
      rng_.Uniform(config_.warehouses));
  const uint32_t did = static_cast<uint32_t>(
      rng_.Uniform(config_.districts_per_warehouse));

  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  txn::Transaction tx = *tx_result;

  // Oldest pending order of the district, through the ordered index.
  auto pending = core::ScanRange(
      new_order_, 0, Value(OrderKey(wid, did, 0)),
      Value(OrderKey(wid, did, 999999999)), tx.snapshot(), tx.tid(),
      db_->indexes(new_order_));
  Status status = pending.status();
  if (status.ok() && !pending->empty()) {
    // The skip-list walk returns key order; front() is the oldest.
    status = db_->Delete(tx, new_order_, pending->front());
  }
  if (status.ok()) {
    HYRISE_NV_RETURN_NOT_OK(db_->Commit(tx));
    ++stats->deliveries;
    return Status::OK();
  }
  HYRISE_NV_RETURN_NOT_OK(db_->Abort(tx));
  if (status.IsConflict() || status.IsNotFound()) {
    ++stats->aborts;
    return Status::OK();
  }
  return status;
}

Status TpccRunner::RunStockLevel(TpccStats* stats) {
  const uint32_t wid = static_cast<uint32_t>(
      rng_.Uniform(config_.warehouses));
  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  txn::Transaction tx = *tx_result;

  // Count recently used items whose stock fell below a threshold.
  uint64_t low = 0;
  for (int probe = 0; probe < 20; ++probe) {
    const uint32_t iid =
        static_cast<uint32_t>(rng_.Uniform(config_.items));
    auto stock_loc = PointLookup(tx, stock_, StockKey(iid, wid));
    if (!stock_loc.ok()) continue;
    if (std::get<int64_t>(stock_->GetValue(*stock_loc, 1)) < 1000) {
      ++low;
    }
  }
  (void)low;
  HYRISE_NV_RETURN_NOT_OK(db_->Commit(tx));
  ++stats->stock_levels;
  return Status::OK();
}

Result<TpccStats> TpccRunner::Run(uint64_t num_transactions) {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("Load() first");
  }
  TpccStats stats;
  Stopwatch timer;
  for (uint64_t t = 0; t < num_transactions; ++t) {
    const double dice = rng_.NextDouble();
    Status status;
    double threshold = config_.new_order_fraction;
    if (dice < threshold) {
      status = RunNewOrder(&stats);
    } else if (dice < (threshold += config_.payment_fraction)) {
      status = RunPayment(&stats);
    } else if (dice < (threshold += config_.delivery_fraction)) {
      status = RunDelivery(&stats);
    } else if (dice < (threshold += config_.stock_level_fraction)) {
      status = RunStockLevel(&stats);
    } else {
      status = RunOrderStatus(&stats);
    }
    if (!status.ok()) return status;
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace hyrise_nv::workload
