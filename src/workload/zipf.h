#ifndef HYRISE_NV_WORKLOAD_ZIPF_H_
#define HYRISE_NV_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "common/random.h"

namespace hyrise_nv::workload {

/// Zipfian-distributed key generator over [0, n), YCSB-style (Gray et al.
/// rejection-free method with precomputed zeta). theta in (0, 1);
/// theta ≈ 0.99 matches the YCSB default skew.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next key in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Rng rng_;
};

/// Uniform key generator with the same interface.
class UniformGenerator {
 public:
  UniformGenerator(uint64_t n, uint64_t seed) : n_(n), rng_(seed) {}
  uint64_t Next() { return rng_.Uniform(n_); }

 private:
  uint64_t n_;
  Rng rng_;
};

}  // namespace hyrise_nv::workload

#endif  // HYRISE_NV_WORKLOAD_ZIPF_H_
