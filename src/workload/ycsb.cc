#include "workload/ycsb.h"

#include "common/stopwatch.h"
#include "core/query.h"

namespace hyrise_nv::workload {

using storage::DataType;
using storage::Value;

Status YcsbRunner::Load() {
  auto schema_result = storage::Schema::Make(
      {{"key", DataType::kInt64}, {"field", DataType::kString}});
  if (!schema_result.ok()) return schema_result.status();
  auto table_result = db_->CreateTable("ycsb", *schema_result);
  if (!table_result.ok()) return table_result.status();
  table_ = *table_result;
  if (config_.use_index) {
    HYRISE_NV_RETURN_NOT_OK(db_->CreateIndex("ycsb", 0));
  }

  Rng rng(config_.seed);
  auto tx_result = db_->Begin();
  if (!tx_result.ok()) return tx_result.status();
  for (uint64_t k = 0; k < config_.initial_rows; ++k) {
    auto insert_result = db_->Insert(
        *tx_result, table_,
        {Value(static_cast<int64_t>(k)),
         Value(rng.NextString(config_.value_length))});
    if (!insert_result.ok()) return insert_result.status();
    // Commit in batches to bound the touch list size.
    if ((k + 1) % 1024 == 0) {
      HYRISE_NV_RETURN_NOT_OK(db_->Commit(*tx_result));
      tx_result = db_->Begin();
      if (!tx_result.ok()) return tx_result.status();
    }
  }
  HYRISE_NV_RETURN_NOT_OK(db_->Commit(*tx_result));
  next_key_ = config_.initial_rows;
  return Status::OK();
}

Result<YcsbStats> YcsbRunner::Run(uint64_t num_transactions) {
  if (table_ == nullptr) {
    return Status::InvalidArgument("Load() first");
  }
  YcsbStats stats;
  Rng rng(config_.seed + 1);
  ZipfGenerator keys(config_.initial_rows, config_.zipf_theta,
                     config_.seed + 2);
  Stopwatch timer;
  for (uint64_t t = 0; t < num_transactions; ++t) {
    auto tx_result = db_->Begin();
    if (!tx_result.ok()) return tx_result.status();
    auto& tx = *tx_result;
    const double dice = rng.NextDouble();
    Status op_status = Status::OK();
    if (dice < config_.read_fraction) {
      // Point read.
      const int64_t key = static_cast<int64_t>(keys.Next());
      auto rows = db_->ScanEqual(table_, 0, Value(key), tx.snapshot(),
                                 tx.tid());
      if (!rows.ok()) {
        op_status = rows.status();
      } else {
        ++stats.reads;
      }
    } else if (dice < config_.read_fraction + config_.update_fraction) {
      // Update: replace the field of one visible version of the key.
      const int64_t key = static_cast<int64_t>(keys.Next());
      auto rows = db_->ScanEqual(table_, 0, Value(key), tx.snapshot(),
                                 tx.tid());
      if (!rows.ok()) {
        op_status = rows.status();
      } else if (!rows->empty()) {
        auto update_result = db_->Update(
            tx, table_, rows->front(),
            {Value(key), Value(rng.NextString(config_.value_length))});
        op_status = update_result.status();
        if (op_status.ok()) ++stats.updates;
      }
    } else {
      const int64_t key = static_cast<int64_t>(next_key_++);
      auto insert_result = db_->Insert(
          tx, table_,
          {Value(key), Value(rng.NextString(config_.value_length))});
      op_status = insert_result.status();
      if (op_status.ok()) ++stats.inserts;
    }

    if (op_status.ok()) {
      HYRISE_NV_RETURN_NOT_OK(db_->Commit(tx));
      ++stats.transactions;
    } else if (op_status.IsConflict()) {
      HYRISE_NV_RETURN_NOT_OK(db_->Abort(tx));
      ++stats.aborts;
    } else {
      (void)db_->Abort(tx);
      return op_status;
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace hyrise_nv::workload
