#ifndef HYRISE_NV_WORKLOAD_ENTERPRISE_H_
#define HYRISE_NV_WORKLOAD_ENTERPRISE_H_

#include <cstdint>
#include <string>

#include "core/database.h"

namespace hyrise_nv::workload {

/// Generator for a wide "enterprise" table, standing in for the paper's
/// 92.2 GB production dataset (DESIGN.md §2). Columns mix low- and
/// high-cardinality ints, doubles, and strings so that dictionary
/// compression behaves realistically. Used by the recovery-scaling
/// experiments (E1, E2, E5).
struct EnterpriseConfig {
  uint32_t int_columns = 4;
  uint32_t double_columns = 2;
  uint32_t string_columns = 2;
  uint32_t string_length = 20;
  /// Distinct values per column (dictionary cardinality driver).
  uint64_t cardinality = 1000;
  uint64_t seed = 7;
  /// Commit batch size while loading.
  uint64_t batch_rows = 1024;
};

/// Creates the table and loads `rows` committed rows. Returns the table.
Result<storage::Table*> LoadEnterpriseTable(core::Database* db,
                                            const std::string& name,
                                            uint64_t rows,
                                            const EnterpriseConfig& config);

/// Approximate logical bytes of one generated row (for dataset sizing).
uint64_t EnterpriseRowBytes(const EnterpriseConfig& config);

}  // namespace hyrise_nv::workload

#endif  // HYRISE_NV_WORKLOAD_ENTERPRISE_H_
