#include "workload/zipf.h"

#include <cmath>

#include "common/macros.h"

namespace hyrise_nv::workload {

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  HYRISE_NV_CHECK(n > 0, "zipf needs n > 0");
  HYRISE_NV_CHECK(theta > 0 && theta < 1, "zipf theta must be in (0,1)");
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t key = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return key >= n_ ? n_ - 1 : key;
}

}  // namespace hyrise_nv::workload
