#include "workload/enterprise.h"

#include "common/random.h"

namespace hyrise_nv::workload {

using storage::DataType;
using storage::Value;

uint64_t EnterpriseRowBytes(const EnterpriseConfig& config) {
  return config.int_columns * 8 + config.double_columns * 8 +
         config.string_columns * config.string_length;
}

Result<storage::Table*> LoadEnterpriseTable(
    core::Database* db, const std::string& name, uint64_t rows,
    const EnterpriseConfig& config) {
  std::vector<storage::ColumnDef> columns;
  for (uint32_t i = 0; i < config.int_columns; ++i) {
    columns.push_back({"i" + std::to_string(i), DataType::kInt64});
  }
  for (uint32_t i = 0; i < config.double_columns; ++i) {
    columns.push_back({"d" + std::to_string(i), DataType::kDouble});
  }
  for (uint32_t i = 0; i < config.string_columns; ++i) {
    columns.push_back({"s" + std::to_string(i), DataType::kString});
  }
  auto schema_result = storage::Schema::Make(std::move(columns));
  if (!schema_result.ok()) return schema_result.status();
  auto table_result = db->CreateTable(name, *schema_result);
  if (!table_result.ok()) return table_result;
  storage::Table* table = *table_result;

  Rng rng(config.seed);
  // Pre-generate the per-column value pools so dictionary cardinality is
  // controlled and string generation is off the insert path.
  std::vector<std::string> string_pool(
      std::min<uint64_t>(config.cardinality, 100000));
  for (auto& s : string_pool) s = rng.NextString(config.string_length);

  auto tx_result = db->Begin();
  if (!tx_result.ok()) return tx_result.status();
  for (uint64_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(table->schema().num_columns());
    for (uint32_t i = 0; i < config.int_columns; ++i) {
      row.emplace_back(
          static_cast<int64_t>(rng.Uniform(config.cardinality)));
    }
    for (uint32_t i = 0; i < config.double_columns; ++i) {
      row.emplace_back(
          static_cast<double>(rng.Uniform(config.cardinality)) * 0.25);
    }
    for (uint32_t i = 0; i < config.string_columns; ++i) {
      row.emplace_back(string_pool[rng.Uniform(string_pool.size())]);
    }
    auto insert_result = db->Insert(*tx_result, table, row);
    if (!insert_result.ok()) return insert_result.status();
    if ((r + 1) % config.batch_rows == 0) {
      HYRISE_NV_RETURN_NOT_OK(db->Commit(*tx_result));
      tx_result = db->Begin();
      if (!tx_result.ok()) return tx_result.status();
    }
  }
  HYRISE_NV_RETURN_NOT_OK(db->Commit(*tx_result));
  return table;
}

}  // namespace hyrise_nv::workload
