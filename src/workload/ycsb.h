#ifndef HYRISE_NV_WORKLOAD_YCSB_H_
#define HYRISE_NV_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "workload/zipf.h"

namespace hyrise_nv::workload {

/// YCSB-style key-value workload over one table (key int64, field
/// string), with a configurable read/update/insert mix and zipfian key
/// skew. Used by the latency-sensitivity experiment (E4) and as a generic
/// OLTP driver.
struct YcsbConfig {
  uint64_t initial_rows = 10000;
  uint32_t value_length = 64;
  double read_fraction = 0.5;
  double update_fraction = 0.4;  // rest are inserts
  double zipf_theta = 0.8;
  uint64_t seed = 42;
  bool use_index = true;
};

struct YcsbStats {
  uint64_t transactions = 0;
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t inserts = 0;
  uint64_t aborts = 0;
  double seconds = 0;
  double TxnPerSecond() const {
    return seconds > 0 ? transactions / seconds : 0;
  }
};

/// Drives a YCSB-style workload against a Database.
class YcsbRunner {
 public:
  YcsbRunner(core::Database* db, YcsbConfig config)
      : db_(db), config_(config) {}

  /// Creates the table (+ index) and loads `initial_rows` committed rows.
  Status Load();

  /// Runs `num_transactions` single-operation transactions.
  Result<YcsbStats> Run(uint64_t num_transactions);

  storage::Table* table() const { return table_; }

 private:
  core::Database* db_;
  YcsbConfig config_;
  storage::Table* table_ = nullptr;
  uint64_t next_key_ = 0;
};

}  // namespace hyrise_nv::workload

#endif  // HYRISE_NV_WORKLOAD_YCSB_H_
